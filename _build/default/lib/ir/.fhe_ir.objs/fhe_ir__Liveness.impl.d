lib/ir/liveness.ml: Array Ckks Dfg Format Hashtbl List Op Scale_check
