lib/ir/dfg.ml: Array Format Graphlib Hashtbl List Op Printf String
