lib/ir/interp.ml: Array Ckks Dfg Format Hashtbl Latency List Op Scale_check
