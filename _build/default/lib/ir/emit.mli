(** C code emission against ACElib-style FHE APIs.

    The paper's pipeline compiles each managed FHE program "to C using
    ACElib's FHE APIs" and builds it with GCC.  This module reproduces the
    code-generation step: a legalised DFG becomes a self-contained C
    translation unit whose body is one API call per node (AddCC, MulCP,
    Rescale, Bootstrap, ...), with rolled loops re-emitted as `for`
    annotations on their frequency groups, ciphertexts freed at their
    last use (liveness-based), and the constants declared as named
    plaintext handles.

    The target API is a small ACElib-flavoured header (`CIPHER`, `PLAIN`,
    [Add_ciph], [Mul_plain], [Rescale_ciph], [Bootstrap_ciph], ...)
    emitted alongside the program so the artefact is compilable against
    any backend that implements it (a no-op stub suffices to type-check
    with [gcc -fsyntax-only]). *)

val to_string : ?program_name:string -> Ckks.Params.t -> Dfg.t -> string
(** @raise Invalid_argument if the graph fails {!Scale_check.run} (code is
    only generated for legal programs, as in the paper). *)

val write_file : ?program_name:string -> Ckks.Params.t -> path:string -> Dfg.t -> unit

val declared_variables : string -> int
(** Number of ciphertext variables the emitted program declares — used by
    tests to check the liveness-based reuse. *)
