type env = { inputs : (string * float array) list; consts : string -> float array }

type result = {
  outputs : Ckks.Ciphertext.t list;
  latency_ms : float;
  op_count : int;
}

exception Missing_input of string

type value = Ct of Ckks.Ciphertext.t | Pt of Ckks.Plaintext.t

let run ev g env =
  let prm = Ckks.Evaluator.params ev in
  let info =
    match Scale_check.run prm g with
    | Ok info -> info
    | Error vs ->
        let msg =
          Format.asprintf "Interp.run: graph not legal:@ %a"
            (Format.pp_print_list Scale_check.pp_violation)
            (match vs with v :: _ -> [ v ] | [] -> [])
        in
        raise (Ckks.Evaluator.Fhe_error msg)
  in
  let values = Hashtbl.create (Dfg.node_count g) in
  let ct id =
    match Hashtbl.find_opt values id with
    | Some (Ct c) -> c
    | _ -> invalid_arg "Interp: expected ciphertext value"
  in
  let pt id =
    match Hashtbl.find_opt values id with
    | Some (Pt p) -> p
    | _ -> invalid_arg "Interp: expected plaintext value"
  in
  let latency = ref 0.0 and ops = ref 0 in
  List.iter
    (fun id ->
      let node = Dfg.node g id in
      let v =
        match node.Dfg.kind with
        | Op.Input { name; level; scale_bits } ->
            let data =
              match List.assoc_opt name env.inputs with
              | Some d -> d
              | None -> raise (Missing_input name)
            in
            Ct (Ckks.Evaluator.encrypt ev ?level ?scale_bits data)
        | Op.Const { name } ->
            let scale_bits = info.(id).Scale_check.scale_bits in
            Pt (Ckks.Evaluator.encode ev ~scale_bits (env.consts name))
        | Op.Add_cc -> Ct (Ckks.Evaluator.add_cc ev (ct node.Dfg.args.(0)) (ct node.Dfg.args.(1)))
        | Op.Add_cp -> Ct (Ckks.Evaluator.add_cp ev (ct node.Dfg.args.(0)) (pt node.Dfg.args.(1)))
        | Op.Mul_cc -> Ct (Ckks.Evaluator.mul_cc ev (ct node.Dfg.args.(0)) (ct node.Dfg.args.(1)))
        | Op.Mul_cp -> Ct (Ckks.Evaluator.mul_cp ev (ct node.Dfg.args.(0)) (pt node.Dfg.args.(1)))
        | Op.Rotate k -> Ct (Ckks.Evaluator.rotate ev (ct node.Dfg.args.(0)) k)
        | Op.Relin -> Ct (Ckks.Evaluator.relin ev (ct node.Dfg.args.(0)))
        | Op.Rescale -> Ct (Ckks.Evaluator.rescale ev (ct node.Dfg.args.(0)))
        | Op.Modswitch -> Ct (Ckks.Evaluator.modswitch ev (ct node.Dfg.args.(0)))
        | Op.Bootstrap target_level ->
            Ct (Ckks.Evaluator.bootstrap ev (ct node.Dfg.args.(0)) ~target_level)
      in
      (match node.Dfg.kind with
      | Op.Input _ | Op.Const _ -> ()
      | _ ->
          latency := !latency +. Latency.node_cost prm g info id;
          ops := !ops + node.Dfg.freq);
      Hashtbl.replace values id v)
    (Dfg.topo_order g);
  { outputs = List.map ct (Dfg.outputs g); latency_ms = !latency; op_count = !ops }
