(** Multiplicative-depth analysis.

    The depth of a node is the largest number of multiplications on any
    path from an input to it (inclusive).  SMOs and bootstraps are
    transparent.  The region partition (Section 4.1) keys off this: the
    multiplication nodes at depth [i] open region [i]. *)

val per_node : Dfg.t -> int array
(** Depth per node id (0 for dead nodes). *)

val max_depth : Dfg.t -> int
