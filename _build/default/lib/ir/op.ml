type kind =
  | Input of { name : string; level : int option; scale_bits : int option }
  | Const of { name : string }
  | Add_cc
  | Add_cp
  | Mul_cc
  | Mul_cp
  | Rotate of int
  | Relin
  | Rescale
  | Modswitch
  | Bootstrap of int

let is_mul = function Mul_cc | Mul_cp -> true | _ -> false
let is_smo = function Rescale | Modswitch -> true | _ -> false
let produces_ct = function Const _ -> false | _ -> true

let cost_op = function
  | Input _ | Const _ -> None
  | Add_cc -> Some Ckks.Cost_model.Add_cc
  | Add_cp -> Some Ckks.Cost_model.Add_cp
  | Mul_cc -> Some Ckks.Cost_model.Mul_cc
  | Mul_cp -> Some Ckks.Cost_model.Mul_cp
  | Rotate _ -> Some Ckks.Cost_model.Rotate
  | Relin -> Some Ckks.Cost_model.Relin
  | Rescale -> Some Ckks.Cost_model.Rescale
  | Modswitch -> Some Ckks.Cost_model.Modswitch
  | Bootstrap _ -> Some Ckks.Cost_model.Bootstrap

let name = function
  | Input { name; _ } -> Printf.sprintf "input:%s" name
  | Const { name } -> Printf.sprintf "const:%s" name
  | Add_cc -> "add_cc"
  | Add_cp -> "add_cp"
  | Mul_cc -> "mul_cc"
  | Mul_cp -> "mul_cp"
  | Rotate k -> Printf.sprintf "rotate[%d]" k
  | Relin -> "relin"
  | Rescale -> "rescale"
  | Modswitch -> "modswitch"
  | Bootstrap l -> Printf.sprintf "bootstrap[->L%d]" l

let pp ppf kind = Format.pp_print_string ppf (name kind)
