lib/lang/lang.mli: Fhe_ir
