lib/lang/lang.ml: Array Dfg Fhe_ir Hashtbl List Option Printf String
