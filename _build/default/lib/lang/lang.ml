open Fhe_ir

type view =
  | Input of string
  | Sym of string
  | Lit of float
  | Add of t * t
  | Mul of t * t
  | Rotate of t * int

and t = { view : view; is_ct : bool }

let input name = { view = Input name; is_ct = true }
let sym name = { view = Sym name; is_ct = false }
let lit v = { view = Lit v; is_ct = false }

let lit_name v = Printf.sprintf "$%.17g" v

let add a b =
  match (a.view, b.view) with
  | Lit x, Lit y -> lit (x +. y)
  | _ ->
      if (not a.is_ct) && not b.is_ct then
        invalid_arg "Lang.add: plaintext-plaintext addition of symbols";
      (* canonical order: ciphertext first *)
      let a, b = if a.is_ct then (a, b) else (b, a) in
      { view = Add (a, b); is_ct = true }

let mul a b =
  match (a.view, b.view) with
  | Lit x, Lit y -> lit (x *. y)
  | _ ->
      if (not a.is_ct) && not b.is_ct then
        invalid_arg "Lang.mul: plaintext-plaintext product of symbols";
      let a, b = if a.is_ct then (a, b) else (b, a) in
      { view = Mul (a, b); is_ct = true }

let sub a b =
  match b.view with
  | Lit v -> add a (lit (-.v))
  | _ ->
      if not b.is_ct then invalid_arg "Lang.sub: cannot negate a symbol cheaply"
      else add a (mul b (lit (-1.0)))

let rotate a k =
  if not a.is_ct then invalid_arg "Lang.rotate: plaintext rotation";
  if k = 0 then a else { view = Rotate (a, k); is_ct = true }

let square a = mul a a

let sum_rotations x ~offsets =
  List.fold_left (fun acc o -> add acc (rotate x o)) x offsets

let dot x name ~taps ~stride =
  if taps < 1 then invalid_arg "Lang.dot: taps must be positive";
  let term i =
    mul (rotate x (i * stride)) (sym (Printf.sprintf "%s_w%d" name i))
  in
  let rec go acc i = if i >= taps then acc else go (add acc (term i)) (i + 1) in
  go (term 0) 1

let poly_odd x coeffs =
  if Array.length coeffs = 0 then invalid_arg "Lang.poly_odd: no coefficients";
  (* shared odd power basis: x, x^3 = x^2*x, x^5 = x^2*x^3, ... *)
  let x2 = square x in
  let powers = Array.make (Array.length coeffs) x in
  for i = 1 to Array.length coeffs - 1 do
    powers.(i) <- mul x2 powers.(i - 1)
  done;
  let terms = Array.mapi (fun i p -> mul p (lit coeffs.(i))) powers in
  Array.fold_left
    (fun acc t -> match acc with None -> Some t | Some a -> Some (add a t))
    None terms
  |> Option.get

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( *! ) e v = mul e (lit v)
  let ( +! ) e v = add e (lit v)
end

(* --- compilation with hash-consing ------------------------------------------ *)

(* Structural keys over already-compiled children give transparent sharing
   of identical sub-expressions (EVA's common-subexpression behaviour at
   the frontend). *)
type key =
  | K_input of string
  | K_sym of string
  | K_add of int * int
  | K_mul of int * int
  | K_rotate of int * int

let compile ~outputs =
  let g = Dfg.create () in
  let memo : (key, int) Hashtbl.t = Hashtbl.create 64 in
  let intern key build =
    match Hashtbl.find_opt memo key with
    | Some id -> id
    | None ->
        let id = build () in
        Hashtbl.add memo key id;
        id
  in
  let rec go e =
    match e.view with
    | Input name -> intern (K_input name) (fun () -> Dfg.input g name)
    | Sym name -> intern (K_sym name) (fun () -> Dfg.const g name)
    | Lit v -> intern (K_sym (lit_name v)) (fun () -> Dfg.const g (lit_name v))
    | Add (a, b) ->
        let ia = go a and ib = go b in
        let ia, ib = if b.is_ct && not a.is_ct then (ib, ia) else (ia, ib) in
        intern
          (K_add (min ia ib, max ia ib))
          (fun () -> if b.is_ct && a.is_ct then Dfg.add_cc g ia ib else Dfg.add_cp g ia ib)
    | Mul (a, b) ->
        let ia = go a and ib = go b in
        let ia, ib = if b.is_ct && not a.is_ct then (ib, ia) else (ia, ib) in
        intern
          (K_mul (min ia ib, max ia ib))
          (fun () -> if b.is_ct && a.is_ct then Dfg.mul_cc g ia ib else Dfg.mul_cp g ia ib)
    | Rotate (a, k) ->
        let ia = go a in
        intern (K_rotate (ia, k)) (fun () -> Dfg.rotate g ia k)
  in
  let outs =
    List.map
      (fun e ->
        if not e.is_ct then invalid_arg "Lang.compile: plaintext output";
        go e)
      outputs
  in
  Dfg.set_outputs g outs;
  g

let resolver base ~dim name =
  if String.length name > 1 && name.[0] = '$' then
    match float_of_string_opt (String.sub name 1 (String.length name - 1)) with
    | Some v -> Array.make dim v
    | None -> base name
  else base name
