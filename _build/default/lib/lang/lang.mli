(** An EVA-style expression frontend for FHE programs.

    The FHE compilers the paper builds on (EVA, HECATE, Fhelipe) accept a
    small vector-arithmetic language and lower it to the ciphertext IR;
    this module provides the same front door for the reproduction.
    Expressions are plain OCaml values with overloaded arithmetic that
    dispatches ciphertext/plaintext variants automatically ([x * w] turns
    into [Mul_cp] when [w] is a plaintext symbol or literal, [Mul_cc] when
    both sides are ciphertexts), and {!compile} hash-conses structurally
    identical sub-expressions so shared terms lower to shared DFG nodes.

    The result is an unmanaged DFG: feed it to {!Resbm.Driver.compile} (or
    any manager variant) for SMO and bootstrap insertion. *)

type t

(** {1 Atoms} *)

val input : string -> t
(** A ciphertext input. *)

val sym : string -> t
(** A named plaintext (weights, masks); payload resolved at run time. *)

val lit : float -> t
(** A plaintext literal, broadcast to all slots. *)

(** {1 Operators} *)

val add : t -> t -> t
val mul : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [add a (mul b (lit (-1.)))] when [b] is a ciphertext —
    costing a multiplicative level, as in CKKS — and a plain literal fold
    when both are plaintexts. *)

val rotate : t -> int -> t
val square : t -> t
val sum_rotations : t -> offsets:int list -> t
(** [x + rot(x, o1) + rot(x, o2) + ...] — the reduction idiom of packed
    kernels. *)

val dot : t -> string -> taps:int -> stride:int -> t
(** Rotate-and-multiply-accumulate against symbols [name_w0 ... name_w(t-1)]
    placed [stride] slots apart. *)

val poly_odd : t -> float array -> t
(** Odd polynomial [c.(0) x + c.(1) x^3 + c.(2) x^5 + ...] evaluated on the
    shared power basis (depth-efficient, as the activation lowering). *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( *! ) : t -> float -> t  (** Scale by a literal. *)

  val ( +! ) : t -> float -> t  (** Offset by a literal. *)
end

(** {1 Compilation} *)

val compile : outputs:t list -> Fhe_ir.Dfg.t
(** Lower to a fresh DFG with hash-consing; outputs in list order.
    @raise Invalid_argument if an output is a plaintext expression. *)

val resolver : (string -> float array) -> dim:int -> string -> float array
(** Wrap a symbol resolver so that literal constants (named ["$<value>"])
    resolve to their broadcast value. *)
