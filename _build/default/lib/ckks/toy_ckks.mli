(** An exact CKKS instance over small parameters — the ground-truth oracle
    for the simulated evaluator.

    This is a real, working RLWE scheme in pure OCaml: ring
    [Z_Q[X]/(X^N + 1)] with an RNS prime chain ({!Rns_poly}), canonical
    embedding encode/decode, ternary secret keys, public-key encryption,
    and the homomorphic operations the paper's Table 1 describes —
    ciphertext/plaintext addition and multiplication, exact RNS rescale
    and modulus drop.  Products are kept as three-component ciphertexts
    and decrypted against [(1, s, s^2)], which sidesteps relinearisation
    keys while exercising the identical scale/level algebra
    (relinearisation only re-compresses the ciphertext; it does not change
    scales or levels).  Rotations (Galois automorphisms with key
    switching) are out of scope.

    Parameters are toy-sized ([N] up to ~256, ~20-bit primes): large
    enough to validate semantics bit-for-bit against the simulator, far
    too small for security.  Tests cross-check Table 1's scale/level rules
    and the value trajectories of the simulated evaluator against this
    implementation. *)

type params = {
  n : int;  (** Ring degree (power of two); [n/2] slots. *)
  prime_bits : int;  (** Size of the chain primes. *)
  levels : int;  (** Initial level (chain length minus one). *)
  scale : float;  (** Encoding scale (e.g. [2^12]). *)
  sigma : float;  (** Error width. *)
}

val default_params : params
(** [n = 64], 20-bit primes, 2 levels, scale [2^19] (roughly the prime
    size, as in real RNS-CKKS parameter sets). *)

type secret_key
type public_key

type plaintext = { pt_poly : Rns_poly.t; pt_scale : float }

type ciphertext = private {
  parts : Rns_poly.t array;  (** 2 components, or 3 after multiplication. *)
  ct_scale : float;
  ct_level : int;
  galois : int;  (** Accumulated automorphism exponent (1 = identity). *)
}

val scale : ciphertext -> float
val level : ciphertext -> int

type ctx

val create : ?seed:int64 -> params -> ctx
val keygen : ctx -> secret_key * public_key

val encode : ctx -> float array -> plaintext
(** Encode [n/2] reals at the context scale via the inverse canonical
    embedding. *)

val decode : ctx -> plaintext -> float array

val encrypt : ctx -> public_key -> plaintext -> ciphertext
val decrypt : ctx -> secret_key -> ciphertext -> plaintext

val add : ciphertext -> ciphertext -> ciphertext
(** Requires equal scales and levels (Table 1, AddCC). *)

val add_plain : ctx -> ciphertext -> plaintext -> ciphertext
val mul : ciphertext -> ciphertext -> ciphertext
(** Result has three components and the product scale (Table 1, MulCC). *)

val mul_plain : ctx -> ciphertext -> plaintext -> ciphertext
val rescale : ciphertext -> ciphertext
(** Divides the scale by the dropped prime and lowers the level by one. *)

val mod_drop : ciphertext -> ciphertext
(** Table 1's Modswitch: lower the level, keep the scale. *)

val rotate : ctx -> ciphertext -> int -> ciphertext
(** Slot rotation by [k] positions via the Galois automorphism
    [X -> X^(5^k)].  Without key-switching keys (out of scope — they need
    multi-precision arithmetic), the automorphism is tracked on the
    ciphertext and resolved against the transformed secret at decryption;
    combining ciphertexts under different automorphisms is rejected, which
    is precisely the restriction key switching lifts. *)

val dropped_prime : ctx -> level:int -> int
(** The prime removed when rescaling from [level]. *)
