type t = {
  log2_degree : int;
  scale_bits : int;
  waterline_bits : int;
  q0_bits : int;
  l_max : int;
  input_level : int;
  input_scale_bits : int;
  bootstrap_depth : int;
}

let default =
  {
    log2_degree = 16;
    scale_bits = 56;
    waterline_bits = 56;
    q0_bits = 60;
    l_max = 16;
    input_level = 16;
    input_scale_bits = 56;
    bootstrap_depth = 15;
  }

let fig1 =
  {
    log2_degree = 16;
    scale_bits = 40;
    waterline_bits = 40;
    q0_bits = 40;
    l_max = 3;
    input_level = 1;
    input_scale_bits = 40;
    bootstrap_depth = 15;
  }

let slot_count p = 1 lsl (p.log2_degree - 1)

let with_l_max p l_max = { p with l_max }

let validate p =
  if p.log2_degree < 2 || p.log2_degree > 20 then Error "log2_degree out of range"
  else if p.scale_bits <= 0 then Error "scale_bits must be positive"
  else if p.waterline_bits <= 0 then Error "waterline_bits must be positive"
  else if p.waterline_bits > p.scale_bits then Error "waterline above scale factor"
  else if p.q0_bits < p.scale_bits then Error "q0 must be at least the scale factor"
  else if p.l_max < 1 then Error "l_max must be at least 1"
  else if p.input_level < 0 then Error "input_level must be non-negative"
  else if p.input_scale_bits <= 0 then Error "input_scale_bits must be positive"
  else Ok ()

let pp ppf p =
  Format.fprintf ppf
    "@[<h>N=2^%d q=2^%d q_w=2^%d q0=2^%d l_max=%d input@(L%d, 2^%d)@]" p.log2_degree
    p.scale_bits p.waterline_bits p.q0_bits p.l_max p.input_level p.input_scale_bits
