type plan = {
  n : int;
  q : int;
  psi_rev : int array;  (* powers of psi (2n-th root), bit-reversed *)
  psi_inv_rev : int array;
  n_inv : int;
}

let n p = p.n
let q p = p.q

let is_pow2 n = n > 0 && n land (n - 1) = 0

let bit_reverse ~bits i =
  let r = ref 0 in
  for b = 0 to bits - 1 do
    if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
  done;
  !r

let make_plan ~n ~q =
  if not (is_pow2 n) then invalid_arg "Ntt.make_plan: n must be a power of two";
  if (q - 1) mod (2 * n) <> 0 || not (Modarith.is_prime q) then
    invalid_arg "Ntt.make_plan: q must be a prime with q = 1 (mod 2n)";
  let psi = Modarith.primitive_root_of_unity ~order:(2 * n) ~q in
  let psi_inv = Modarith.inv_mod psi ~q in
  let bits =
    let rec go b v = if v = 1 then b else go (b + 1) (v lsr 1) in
    go 0 n
  in
  let table root =
    let t = Array.make n 1 in
    let pow = ref 1 in
    let linear = Array.make n 1 in
    for i = 0 to n - 1 do
      linear.(i) <- !pow;
      pow := Modarith.mul_mod !pow root ~q
    done;
    for i = 0 to n - 1 do
      t.(i) <- linear.(bit_reverse ~bits i)
    done;
    t
  in
  {
    n;
    q;
    psi_rev = table psi;
    psi_inv_rev = table psi_inv;
    n_inv = Modarith.inv_mod n ~q;
  }

(* Cooley–Tukey forward, decimation in time, merged psi twisting (the
   standard "NTT with psi powers in bit-reversed order" formulation). *)
let forward p a =
  if Array.length a <> p.n then invalid_arg "Ntt.forward: wrong length";
  let q = p.q in
  let t = ref p.n and m = ref 1 in
  while !m < p.n do
    t := !t / 2;
    for i = 0 to !m - 1 do
      let j1 = 2 * i * !t in
      let j2 = j1 + !t - 1 in
      let s = p.psi_rev.(!m + i) in
      for j = j1 to j2 do
        let u = a.(j) in
        let v = Modarith.mul_mod a.(j + !t) s ~q in
        a.(j) <- Modarith.add_mod u v ~q;
        a.(j + !t) <- Modarith.sub_mod u v ~q
      done
    done;
    m := !m * 2
  done

(* Gentleman–Sande inverse with inverse psi powers and final 1/n scaling. *)
let inverse p a =
  if Array.length a <> p.n then invalid_arg "Ntt.inverse: wrong length";
  let q = p.q in
  let t = ref 1 and m = ref p.n in
  while !m > 1 do
    let j1 = ref 0 in
    let h = !m / 2 in
    for i = 0 to h - 1 do
      let j2 = !j1 + !t - 1 in
      let s = p.psi_inv_rev.(h + i) in
      for j = !j1 to j2 do
        let u = a.(j) in
        let v = a.(j + !t) in
        a.(j) <- Modarith.add_mod u v ~q;
        a.(j + !t) <- Modarith.mul_mod (Modarith.sub_mod u v ~q) s ~q
      done;
      j1 := !j1 + (2 * !t)
    done;
    t := !t * 2;
    m := h
  done;
  for i = 0 to p.n - 1 do
    a.(i) <- Modarith.mul_mod a.(i) p.n_inv ~q
  done

let multiply p a b =
  let fa = Array.copy a and fb = Array.copy b in
  forward p fa;
  forward p fb;
  let c = Array.init p.n (fun i -> Modarith.mul_mod fa.(i) fb.(i) ~q:p.q) in
  inverse p c;
  c
