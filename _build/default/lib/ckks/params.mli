(** RNS-CKKS scheme parameters.

    All scales are carried as base-2 logarithms ("bits"): the paper's
    [q = 2^56] is [scale_bits = 56].  Scale algebra (Table 1) is then exact
    integer arithmetic: multiplication adds scale bits, rescaling subtracts
    [scale_bits]. *)

type t = {
  log2_degree : int;  (** [log2 N]; slot count is [N/2]. *)
  scale_bits : int;  (** [log2 q], the rescaling factor. *)
  waterline_bits : int;  (** [log2 q_w], EVA's waterline (minimum scale). *)
  q0_bits : int;  (** [log2 q0], the output-precision prime. *)
  l_max : int;  (** Highest level a bootstrap may target. *)
  input_level : int;  (** Level of freshly encrypted inputs. *)
  input_scale_bits : int;  (** Scale of freshly encrypted inputs. *)
  bootstrap_depth : int;  (** Multiplicative depth consumed internally by
                              bootstrapping (15 in ACElib); informational. *)
}

val default : t
(** The paper's evaluation setting: [N = 2^16], [q = 2^56], [q_w = q],
    [q0 = 2^60], [l_max = 16], inputs fresh at level 16. *)

val fig1 : t
(** The motivating example of Figure 1: [q = q_w = q0 = 2^40], [l_max = 3],
    input at level 1 with scale [2^40]. *)

val slot_count : t -> int

val with_l_max : t -> int -> t
(** [with_l_max p l] is [p] with the bootstrap ceiling replaced — used for
    the Figure 7 sweep. *)

val validate : t -> (unit, string) result
(** Sanity-check internal consistency (positive scales, waterline below
    capacity, ...). *)

val pp : Format.formatter -> t -> unit
