(** Encoded plaintexts: a slot vector quantised at a scale.

    Encoding maps a real vector [v] to integers [round (v * 2^scale_bits)];
    we keep the dequantised values plus the quantisation error bound, which
    feeds the evaluator's noise accounting. *)

type t = private {
  slots : float array;
  scale_bits : int;
  err : float;  (** Absolute bound on the per-slot encoding error. *)
}

val encode : scale_bits:int -> float array -> t

val re_encode : t -> scale_bits:int -> t
(** Re-encode the same logical values at another scale.  Models the
    compiler's freedom to pick the encoding scale of constants (e.g. AddCP
    encodes the plaintext at the ciphertext's scale). *)

val max_abs : t -> float

val pp : Format.formatter -> t -> unit
