type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (int64 t)

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* mask to the native non-negative range: Int64.to_int keeps the low 63
     bits and would otherwise produce negative values *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 1) land max_int in
  v mod bound

let float t =
  (* 53 uniform bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let gaussian t =
  let u1 = Float.max (float t) 1e-300 and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
