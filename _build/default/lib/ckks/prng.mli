(** Deterministic pseudo-random numbers (SplitMix64).

    Everything stochastic in the reproduction — synthetic weights, the
    synthetic dataset, noise injection in the simulated evaluator — draws
    from this generator so every run is bit-reproducible. *)

type t

val create : int64 -> t

val split : t -> t
(** An independent stream derived from the current state. *)

val int64 : t -> int64

val int : t -> bound:int -> int
(** Uniform in [0, bound).  [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float

val gaussian : t -> float
(** Standard normal (Box–Muller). *)
