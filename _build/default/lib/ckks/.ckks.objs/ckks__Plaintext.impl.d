lib/ckks/plaintext.ml: Array Float Format
