lib/ckks/toy_ckks.ml: Array Complex Float Printf Prng Rns_poly
