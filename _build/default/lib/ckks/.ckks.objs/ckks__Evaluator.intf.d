lib/ckks/evaluator.mli: Ciphertext Params Plaintext
