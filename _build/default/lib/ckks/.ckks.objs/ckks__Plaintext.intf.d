lib/ckks/plaintext.mli: Format
