lib/ckks/toy_ckks.mli: Rns_poly
