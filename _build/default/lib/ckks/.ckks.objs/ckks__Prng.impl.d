lib/ckks/prng.ml: Float Int64
