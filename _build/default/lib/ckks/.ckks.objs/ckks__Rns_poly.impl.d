lib/ckks/rns_poly.ml: Array Float Modarith Ntt Prng
