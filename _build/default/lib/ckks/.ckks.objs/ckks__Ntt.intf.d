lib/ckks/ntt.mli:
