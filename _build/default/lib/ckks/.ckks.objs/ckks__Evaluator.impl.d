lib/ckks/evaluator.ml: Array Ciphertext Format Option Params Plaintext Prng
