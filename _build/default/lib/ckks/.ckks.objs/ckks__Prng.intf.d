lib/ckks/prng.mli:
