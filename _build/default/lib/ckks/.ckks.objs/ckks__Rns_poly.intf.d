lib/ckks/rns_poly.mli: Prng
