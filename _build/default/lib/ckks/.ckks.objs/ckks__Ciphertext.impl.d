lib/ckks/ciphertext.ml: Array Float Format
