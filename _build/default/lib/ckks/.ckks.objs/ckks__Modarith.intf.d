lib/ckks/modarith.mli:
