lib/ckks/params.mli: Format
