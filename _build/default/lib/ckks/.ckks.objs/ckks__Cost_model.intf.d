lib/ckks/cost_model.mli:
