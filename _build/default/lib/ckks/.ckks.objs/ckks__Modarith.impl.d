lib/ckks/modarith.ml: List
