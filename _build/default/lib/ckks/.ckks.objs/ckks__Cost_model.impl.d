lib/ckks/cost_model.ml: Array Float Hashtbl
