lib/ckks/params.ml: Format
