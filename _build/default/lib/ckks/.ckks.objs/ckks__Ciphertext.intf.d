lib/ckks/ciphertext.mli: Format
