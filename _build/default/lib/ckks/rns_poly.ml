type basis = { n : int; moduli : int array; plans : Ntt.plan array }

let make_basis ~n ~bits ~levels =
  if levels < 0 then invalid_arg "Rns_poly.make_basis: negative levels";
  let count = levels + 1 in
  let moduli = Array.make count 0 in
  let found = ref 0 in
  let candidate = ref ((1 lsl bits) - 1) in
  let order = 2 * n in
  (* walk downwards through primes = 1 (mod 2n) *)
  candidate := (!candidate - 1) / order * order + 1;
  while !found < count do
    if !candidate <= order then invalid_arg "Rns_poly.make_basis: ran out of primes";
    if Modarith.is_prime !candidate then begin
      moduli.(!found) <- !candidate;
      incr found
    end;
    candidate := !candidate - order
  done;
  { n; moduli; plans = Array.map (fun q -> Ntt.make_plan ~n ~q) moduli }

let basis_n b = b.n
let basis_moduli b = Array.copy b.moduli

let modulus_product b =
  Array.fold_left (fun acc q -> acc *. float_of_int q) 1.0 b.moduli

type t = { basis : basis; level : int; residues : int array array }

let check_level basis level =
  if level < 0 || level >= Array.length basis.moduli then
    invalid_arg "Rns_poly: level out of range"

let zero basis ~level =
  check_level basis level;
  { basis; level; residues = Array.init (level + 1) (fun _ -> Array.make basis.n 0) }

let of_coeffs basis ~level coeffs =
  check_level basis level;
  if Array.length coeffs <> basis.n then invalid_arg "Rns_poly.of_coeffs: wrong length";
  {
    basis;
    level;
    residues =
      Array.init (level + 1) (fun i ->
          let q = basis.moduli.(i) in
          Array.map (fun c -> ((c mod q) + q) mod q) coeffs);
  }

let to_centered_coeffs p =
  let moduli = Array.sub p.basis.moduli 0 (p.level + 1) in
  let product = Array.fold_left ( * ) 1 moduli in
  if
    Array.fold_left (fun acc q -> acc *. float_of_int q) 1.0 moduli
    > 0.45 *. float_of_int max_int
  then invalid_arg "Rns_poly.to_centered_coeffs: modulus product too large";
  (* CRT: x = sum_i r_i * (P/q_i) * ((P/q_i)^-1 mod q_i)  (mod P).  The
     modulus product can approach 2^60, so products use a double-and-add
     ladder instead of native multiplication. *)
  let mulm a b =
    let rec go acc a b =
      if b = 0 then acc
      else
        let acc = if b land 1 = 1 then (acc + a) mod product else acc in
        go acc (a * 2 mod product) (b lsr 1)
    in
    go 0 (a mod product) b
  in
  let weights =
    Array.mapi
      (fun i q ->
        let pi = product / q in
        let inv = Modarith.inv_mod (pi mod q) ~q in
        ignore i;
        (pi, inv))
      moduli
  in
  Array.init p.basis.n (fun j ->
      let acc = ref 0 in
      Array.iteri
        (fun i (pi, inv) ->
          let q = moduli.(i) in
          let term = mulm pi (p.residues.(i).(j) * inv mod q) in
          acc := (!acc + term) mod product)
        weights;
      let v = !acc in
      if v > product / 2 then v - product else v)

let map2 name f a b =
  if a.basis != b.basis then invalid_arg (name ^ ": different bases");
  if a.level <> b.level then invalid_arg (name ^ ": level mismatch");
  {
    a with
    residues =
      Array.init (a.level + 1) (fun i ->
          let q = a.basis.moduli.(i) in
          Array.init a.basis.n (fun j -> f ~q a.residues.(i).(j) b.residues.(i).(j)));
  }

let add = map2 "Rns_poly.add" (fun ~q x y -> Modarith.add_mod x y ~q)
let sub = map2 "Rns_poly.sub" (fun ~q x y -> Modarith.sub_mod x y ~q)

let neg a =
  {
    a with
    residues =
      Array.init (a.level + 1) (fun i ->
          Array.map (fun x -> Modarith.neg_mod x ~q:a.basis.moduli.(i)) a.residues.(i));
  }

let mul a b =
  if a.basis != b.basis then invalid_arg "Rns_poly.mul: different bases";
  if a.level <> b.level then invalid_arg "Rns_poly.mul: level mismatch";
  {
    a with
    residues =
      Array.init (a.level + 1) (fun i ->
          Ntt.multiply a.basis.plans.(i) a.residues.(i) b.residues.(i));
  }

let scalar_mul k a =
  {
    a with
    residues =
      Array.init (a.level + 1) (fun i ->
          let q = a.basis.moduli.(i) in
          let kq = ((k mod q) + q) mod q in
          Array.map (fun x -> Modarith.mul_mod x kq ~q) a.residues.(i));
  }

let automorphism p ~g =
  let n = p.basis.n in
  let two_n = 2 * n in
  let g = ((g mod two_n) + two_n) mod two_n in
  if g land 1 = 0 then invalid_arg "Rns_poly.automorphism: even exponent";
  {
    p with
    residues =
      Array.init (p.level + 1) (fun i ->
          let q = p.basis.moduli.(i) in
          let src = p.residues.(i) in
          let dst = Array.make n 0 in
          for j = 0 to n - 1 do
            let e = j * g mod two_n in
            if e < n then dst.(e) <- src.(j)
            else dst.(e - n) <- Modarith.neg_mod src.(j) ~q
          done;
          dst);
  }

(* Exact RNS rescale by the last active prime q_L with centered rounding:
   x' = (x - [x]_{q_L}) / q_L computed per remaining residue as
   (x_i - centered(x_L)) * q_L^{-1} (mod q_i). *)
let rescale p =
  if p.level < 1 then invalid_arg "Rns_poly.rescale: level 0";
  let ql = p.basis.moduli.(p.level) in
  let last = p.residues.(p.level) in
  {
    p with
    level = p.level - 1;
    residues =
      Array.init p.level (fun i ->
          let q = p.basis.moduli.(i) in
          let ql_inv = Modarith.inv_mod (ql mod q) ~q in
          Array.init p.basis.n (fun j ->
              let centered_last = Modarith.centered last.(j) ~q:ql in
              let shifted =
                Modarith.sub_mod p.residues.(i).(j) (((centered_last mod q) + q) mod q) ~q
              in
              Modarith.mul_mod shifted ql_inv ~q));
  }

let mod_drop p =
  if p.level < 1 then invalid_arg "Rns_poly.mod_drop: level 0";
  { p with level = p.level - 1; residues = Array.sub p.residues 0 p.level }

let sample_uniform basis ~level rng =
  check_level basis level;
  {
    basis;
    level;
    residues =
      Array.init (level + 1) (fun i ->
          let q = basis.moduli.(i) in
          Array.init basis.n (fun _ -> Prng.int rng ~bound:q));
  }

let sample_ternary basis ~level rng =
  check_level basis level;
  let coeffs = Array.init basis.n (fun _ -> Prng.int rng ~bound:3 - 1) in
  of_coeffs basis ~level coeffs

let sample_error basis ~level ~sigma rng =
  check_level basis level;
  let coeffs =
    Array.init basis.n (fun _ ->
        int_of_float (Float.round (sigma *. Prng.gaussian rng)))
  in
  of_coeffs basis ~level coeffs
