(** Negacyclic number-theoretic transform over [Z_q[X]/(X^N + 1)].

    [N] is a power of two and [q] an NTT-friendly prime
    ([q = 1 (mod 2N)]).  Forward/inverse transforms implement the standard
    twisted (psi-powered) Cooley–Tukey / Gentleman–Sande pair, so pointwise
    products of transformed coefficient vectors realise polynomial products
    modulo [X^N + 1] in [O(N log N)].  This is the multiplication kernel of
    the exact CKKS core. *)

type plan

val make_plan : n:int -> q:int -> plan
(** @raise Invalid_argument if [n] is not a power of two or [q] is not a
    prime with [q = 1 (mod 2n)]. *)

val n : plan -> int
val q : plan -> int

val forward : plan -> int array -> unit
(** In-place negacyclic NTT of a length-[n] coefficient vector (entries in
    [[0, q)]). *)

val inverse : plan -> int array -> unit
(** In-place inverse transform; [inverse p (forward p a)] is the identity. *)

val multiply : plan -> int array -> int array -> int array
(** Negacyclic product of two coefficient vectors (inputs unchanged). *)
