(** Latency oracle for RNS-CKKS operations.

    The data is Table 2 of the paper: CPU latencies (milliseconds) measured
    with ACElib at [N = 2^16] for levels 0, 2, ..., 16.  ReSBM's placement
    algorithms consult exactly this table (the [L\[n\]\[l\]] terms of
    Algorithms 4 and 5), so using the published numbers reproduces the
    optimisation landscape of the paper.  Odd levels are interpolated
    linearly; levels above 16 are extrapolated with the last segment's
    slope (needed only when experimenting with [l_max > 16]). *)

type op =
  | Add_cp
  | Add_cc
  | Mul_cp
  | Mul_cc
  | Rotate
  | Relin
  | Rescale
  | Bootstrap  (** Cost is a function of the {e target} level. *)
  | Modswitch  (** O(1); modelled as a fixed epsilon. *)

val all_ops : op list

val op_name : op -> string

val cost : op -> level:int -> float
(** Latency in milliseconds of [op] executed at ciphertext level [level]
    (for [Bootstrap], [level] is the target level).  Levels are clamped at
    0 from below.  Never returns a negative number. *)

val table_levels : int list
(** The level grid of Table 2: [0; 2; ...; 16]. *)
