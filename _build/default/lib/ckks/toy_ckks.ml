type params = {
  n : int;
  prime_bits : int;
  levels : int;
  scale : float;
  sigma : float;
}

let default_params = { n = 64; prime_bits = 20; levels = 2; scale = 524288.0; sigma = 3.2 }

type secret_key = { s_coeffs : int array }
type public_key = { pk0 : Rns_poly.t; pk1 : Rns_poly.t }
type plaintext = { pt_poly : Rns_poly.t; pt_scale : float }

type ciphertext = { parts : Rns_poly.t array; ct_scale : float; ct_level : int; galois : int }

let scale ct = ct.ct_scale
let level ct = ct.ct_level

type ctx = {
  prm : params;
  basis : Rns_poly.basis;
  rng : Prng.t;
  roots : Complex.t array;  (* primitive 2n-th roots used for the slots *)
}

let create ?(seed = 0xC0FFEEL) prm =
  if prm.n < 4 || prm.n land (prm.n - 1) <> 0 then
    invalid_arg "Toy_ckks.create: n must be a power of two >= 4";
  let basis = Rns_poly.make_basis ~n:prm.n ~bits:prm.prime_bits ~levels:prm.levels in
  (* slot j evaluates at zeta^(5^j), zeta = exp(i*pi/n) *)
  let slots = prm.n / 2 in
  let roots =
    let rot = ref 1 in
    Array.init slots (fun _ ->
        let angle = Float.pi *. float_of_int !rot /. float_of_int prm.n in
        rot := !rot * 5 mod (2 * prm.n);
        Complex.polar 1.0 angle)
  in
  { prm; basis; rng = Prng.create seed; roots }

(* --- canonical embedding ------------------------------------------------- *)

let decode_poly ctx coeffs ~at_scale =
  let n = ctx.prm.n in
  Array.map
    (fun root ->
      let acc = ref Complex.zero in
      let power = ref Complex.one in
      for k = 0 to n - 1 do
        acc :=
          Complex.add !acc (Complex.mul !power { Complex.re = float_of_int coeffs.(k); im = 0.0 });
        power := Complex.mul !power root
      done;
      !acc.Complex.re /. at_scale)
    ctx.roots

let encode ctx values =
  let n = ctx.prm.n in
  let slots = n / 2 in
  if Array.length values <> slots then
    invalid_arg (Printf.sprintf "Toy_ckks.encode: expected %d values" slots);
  (* m_k = round(scale * (2/n) * sum_j Re(z_j * conj(root_j)^k)) *)
  let acc = Array.make n 0.0 in
  Array.iteri
    (fun j root ->
      let conj_root = Complex.conj root in
      let power = ref Complex.one in
      for k = 0 to n - 1 do
        acc.(k) <- acc.(k) +. (values.(j) *. !power.Complex.re);
        power := Complex.mul !power conj_root
      done)
    ctx.roots;
  let coeffs =
    Array.map
      (fun a -> int_of_float (Float.round (ctx.prm.scale *. 2.0 /. float_of_int n *. a)))
      acc
  in
  {
    pt_poly = Rns_poly.of_coeffs ctx.basis ~level:ctx.prm.levels coeffs;
    pt_scale = ctx.prm.scale;
  }

let decode ctx pt =
  decode_poly ctx (Rns_poly.to_centered_coeffs pt.pt_poly) ~at_scale:pt.pt_scale

(* --- keys and encryption --------------------------------------------------- *)

let keygen ctx =
  let level = ctx.prm.levels in
  let s = Rns_poly.sample_ternary ctx.basis ~level ctx.rng in
  let s_coeffs = Rns_poly.to_centered_coeffs s in
  let a = Rns_poly.sample_uniform ctx.basis ~level ctx.rng in
  let e = Rns_poly.sample_error ctx.basis ~level ~sigma:ctx.prm.sigma ctx.rng in
  let pk0 = Rns_poly.add (Rns_poly.neg (Rns_poly.mul a s)) e in
  ({ s_coeffs }, { pk0; pk1 = a })

let encrypt ctx pk pt =
  let level = ctx.prm.levels in
  let u = Rns_poly.sample_ternary ctx.basis ~level ctx.rng in
  let e0 = Rns_poly.sample_error ctx.basis ~level ~sigma:ctx.prm.sigma ctx.rng in
  let e1 = Rns_poly.sample_error ctx.basis ~level ~sigma:ctx.prm.sigma ctx.rng in
  let c0 = Rns_poly.add (Rns_poly.add (Rns_poly.mul pk.pk0 u) e0) pt.pt_poly in
  let c1 = Rns_poly.add (Rns_poly.mul pk.pk1 u) e1 in
  { parts = [| c0; c1 |]; ct_scale = pt.pt_scale; ct_level = level; galois = 1 }

let secret_at ctx sk ~level = Rns_poly.of_coeffs ctx.basis ~level sk.s_coeffs

let decrypt ctx sk ct =
  let s =
    let base = secret_at ctx sk ~level:ct.ct_level in
    if ct.galois = 1 then base else Rns_poly.automorphism base ~g:ct.galois
  in
  (* m = sum_i parts_i * s^i *)
  let acc = ref (Rns_poly.zero ctx.basis ~level:ct.ct_level) in
  let s_pow = ref None in
  Array.iter
    (fun part ->
      (match !s_pow with
      | None -> acc := Rns_poly.add !acc part
      | Some p -> acc := Rns_poly.add !acc (Rns_poly.mul part p));
      s_pow := Some (match !s_pow with None -> s | Some p -> Rns_poly.mul p s))
    ct.parts;
  { pt_poly = !acc; pt_scale = ct.ct_scale }

(* --- homomorphic operations --------------------------------------------------- *)

let close_scales a b = Float.abs (a -. b) <= 1e-6 *. Float.max a b

let check_galois name a b =
  if a.galois <> b.galois then
    invalid_arg (name ^ ": operands under different automorphisms (needs key switching)")

let add a b =
  check_galois "Toy_ckks.add" a b;
  if a.ct_level <> b.ct_level then invalid_arg "Toy_ckks.add: level mismatch";
  if not (close_scales a.ct_scale b.ct_scale) then
    invalid_arg "Toy_ckks.add: scale mismatch";
  let size = max (Array.length a.parts) (Array.length b.parts) in
  let part i =
    match
      ( (if i < Array.length a.parts then Some a.parts.(i) else None),
        if i < Array.length b.parts then Some b.parts.(i) else None )
    with
    | Some x, Some y -> Rns_poly.add x y
    | Some x, None | None, Some x -> x
    | None, None -> assert false
  in
  { a with parts = Array.init size part }

let drop_pt_to pt ~level =
  let rec go p =
    if p.Rns_poly.level <= level then p else go (Rns_poly.mod_drop p)
  in
  go pt.pt_poly

let add_plain _ctx ct pt =
  if not (close_scales ct.ct_scale pt.pt_scale) then
    invalid_arg "Toy_ckks.add_plain: scale mismatch";
  let m = drop_pt_to pt ~level:ct.ct_level in
  let parts = Array.copy ct.parts in
  parts.(0) <- Rns_poly.add parts.(0) m;
  { ct with parts }

let mul a b =
  check_galois "Toy_ckks.mul" a b;
  if a.ct_level <> b.ct_level then invalid_arg "Toy_ckks.mul: level mismatch";
  if Array.length a.parts <> 2 || Array.length b.parts <> 2 then
    invalid_arg "Toy_ckks.mul: operands must have two components";
  let c0 = Rns_poly.mul a.parts.(0) b.parts.(0) in
  let c1 =
    Rns_poly.add (Rns_poly.mul a.parts.(0) b.parts.(1)) (Rns_poly.mul a.parts.(1) b.parts.(0))
  in
  let c2 = Rns_poly.mul a.parts.(1) b.parts.(1) in
  {
    parts = [| c0; c1; c2 |];
    ct_scale = a.ct_scale *. b.ct_scale;
    ct_level = a.ct_level;
    galois = a.galois;
  }

let mul_plain _ctx ct pt =
  let m = drop_pt_to pt ~level:ct.ct_level in
  {
    ct with
    parts = Array.map (fun p -> Rns_poly.mul p m) ct.parts;
    ct_scale = ct.ct_scale *. pt.pt_scale;
  }

let dropped_prime_of_basis basis ~level = (Rns_poly.basis_moduli basis).(level)

let rescale ct =
  if ct.ct_level < 1 then invalid_arg "Toy_ckks.rescale: level 0";
  let parts = Array.map Rns_poly.rescale ct.parts in
  let dropped =
    match parts with
    | [||] -> assert false
    | _ -> dropped_prime_of_basis ct.parts.(0).Rns_poly.basis ~level:ct.ct_level
  in
  {
    ct with
    parts;
    ct_scale = ct.ct_scale /. float_of_int dropped;
    ct_level = ct.ct_level - 1;
  }

let mod_drop ct =
  if ct.ct_level < 1 then invalid_arg "Toy_ckks.mod_drop: level 0";
  { ct with parts = Array.map Rns_poly.mod_drop ct.parts; ct_level = ct.ct_level - 1 }

let rotate ctx ct k =
  let two_n = 2 * ctx.prm.n in
  (* g = 5^k mod 2n; negative rotations reduce modulo the slot count *)
  let rec pow acc e = if e = 0 then acc else pow (acc * 5 mod two_n) (e - 1) in
  let slots = ctx.prm.n / 2 in
  let k = ((k mod slots) + slots) mod slots in
  let g = pow 1 k in
  {
    ct with
    parts = Array.map (fun p -> Rns_poly.automorphism p ~g) ct.parts;
    galois = ct.galois * g mod two_n;
  }

let dropped_prime ctx ~level = dropped_prime_of_basis ctx.basis ~level
