let check_q q = if q < 2 then invalid_arg "Modarith: modulus below 2"

let add_mod a b ~q =
  let s = a + b in
  if s >= q then s - q else s

let sub_mod a b ~q =
  let d = a - b in
  if d < 0 then d + q else d

(* q < 2^31 keeps products inside the native 63-bit range. *)
let mul_mod a b ~q = a * b mod q

let neg_mod a ~q = if a = 0 then 0 else q - a

let pow_mod b e ~q =
  check_q q;
  if e < 0 then invalid_arg "Modarith.pow_mod: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul_mod acc b ~q else acc in
      go acc (mul_mod b b ~q) (e lsr 1)
  in
  go 1 (((b mod q) + q) mod q) e

let inv_mod a ~q =
  let a = ((a mod q) + q) mod q in
  if a = 0 then invalid_arg "Modarith.inv_mod: zero";
  pow_mod a (q - 2) ~q

let centered a ~q =
  let a = ((a mod q) + q) mod q in
  if a > q / 2 then a - q else a

(* Deterministic Miller–Rabin with the witness set that covers the 64-bit
   range.  Modular products use a doubling ladder to avoid overflow for
   bases close to 2^31 (we only call this on q < 2^31 anyway, where the
   direct product is safe, but the ladder keeps the function general). *)
let is_prime n =
  if n < 2 then false
  else if n mod 2 = 0 then n = 2
  else begin
    let mulm a b m =
      if m < 1 lsl 31 then a * b mod m
      else begin
        (* double-and-add ladder *)
        let rec go acc a b =
          if b = 0 then acc
          else
            let acc = if b land 1 = 1 then (acc + a) mod m else acc in
            go acc (a * 2 mod m) (b lsr 1)
        in
        go 0 (a mod m) b
      end
    in
    let powm b e m =
      let rec go acc b e =
        if e = 0 then acc
        else
          let acc = if e land 1 = 1 then mulm acc b m else acc in
          go acc (mulm b b m) (e lsr 1)
      in
      go 1 (b mod m) e
    in
    let d = ref (n - 1) and r = ref 0 in
    while !d mod 2 = 0 do
      d := !d / 2;
      incr r
    done;
    let witness a =
      let a = a mod n in
      if a = 0 then false
      else begin
        let x = ref (powm a !d n) in
        if !x = 1 || !x = n - 1 then false
        else begin
          let composite = ref true in
          (try
             for _ = 1 to !r - 1 do
               x := mulm !x !x n;
               if !x = n - 1 then begin
                 composite := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !composite
        end
      end
    in
    not (List.exists witness [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ])
  end

let find_ntt_prime ~bits ~order =
  if bits < 2 || bits > 31 then invalid_arg "Modarith.find_ntt_prime: bits in [2, 31]";
  let top = (1 lsl bits) - 1 in
  (* candidates are 1 mod order *)
  let start = (top - 1) / order * order + 1 in
  let rec scan c = if c <= order then raise Not_found else if is_prime c then c else scan (c - order) in
  scan start

let primitive_root_of_unity ~order ~q =
  if (q - 1) mod order <> 0 then
    invalid_arg "Modarith.primitive_root_of_unity: order does not divide q-1";
  let cofactor = (q - 1) / order in
  (* try small generator candidates until g^cofactor has exact order *)
  let has_exact_order w =
    pow_mod w order ~q = 1
    && pow_mod w (order / 2) ~q <> 1
  in
  let rec search g =
    if g >= q then invalid_arg "Modarith.primitive_root_of_unity: none found"
    else
      let w = pow_mod g cofactor ~q in
      if w <> 1 && (order = 1 || has_exact_order w) then w else search (g + 1)
  in
  if order = 1 then 1 else search 2
