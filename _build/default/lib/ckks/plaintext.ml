type t = { slots : float array; scale_bits : int; err : float }

let quantise ~scale_bits v =
  (* Beyond 52 bits the float mantissa cannot represent the rounding, which
     matches reality: the encoding error is below double precision. *)
  if scale_bits >= 52 then v
  else
    let s = Float.of_int (1 lsl scale_bits) in
    Float.round (v *. s) /. s

let encode ~scale_bits slots =
  if scale_bits <= 0 then invalid_arg "Plaintext.encode: scale must be positive";
  let quantised = Array.map (quantise ~scale_bits) slots in
  { slots = quantised; scale_bits; err = 2.0 ** float_of_int (-scale_bits) }

let re_encode pt ~scale_bits = encode ~scale_bits pt.slots

let max_abs pt = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 pt.slots

let pp ppf pt =
  Format.fprintf ppf "@[<h>pt(%d slots, scale 2^%d)@]" (Array.length pt.slots)
    pt.scale_bits
