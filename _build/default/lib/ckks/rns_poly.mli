(** Polynomials of [Z_Q[X]/(X^N + 1)] in residue-number-system form.

    [Q = q_0 * q_1 * ... * q_L] is a chain of NTT-friendly word-sized
    primes; a polynomial is stored as one residue vector per prime, which
    is exactly the RNS-CKKS representation (Section 2.2 of the paper:
    "RNS decomposes each polynomial into level+1 smaller ones").  The
    [level] of a value is the number of moduli it still carries minus one;
    {!rescale} performs the standard exact RNS division by the last prime,
    dropping one modulus — the operation Table 1 calls Rescale. *)

type basis

val make_basis : n:int -> bits:int -> levels:int -> basis
(** A chain of [levels + 1] distinct NTT-friendly primes of roughly
    [bits] bits for ring degree [n]. *)

val basis_n : basis -> int
val basis_moduli : basis -> int array
val modulus_product : basis -> float
(** Approximate [Q] as a float (for capacity reasoning in tests). *)

type t = private {
  basis : basis;
  level : int;  (** Number of active moduli minus one. *)
  residues : int array array;  (** One row per active modulus. *)
}

val zero : basis -> level:int -> t

val of_coeffs : basis -> level:int -> int array -> t
(** Embed signed integer coefficients (centered representatives). *)

val to_centered_coeffs : t -> int array
(** CRT-reconstruct each coefficient into the centered range.  Requires
    the active modulus product to fit comfortably in 62 bits — true for
    the toy parameter sets; tests enforce it.
    @raise Invalid_argument when the product overflows. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Negacyclic product via per-modulus NTT. *)

val scalar_mul : int -> t -> t

val automorphism : t -> g:int -> t
(** The ring automorphism [X -> X^g] for odd [g] (negacyclic sign rule:
    [X^(n+j) = -X^j]).  Rotating CKKS slots by [k] applies [g = 5^k].
    @raise Invalid_argument on even [g]. *)

val rescale : t -> t
(** Exact RNS rescale: divides by the last active prime (with rounding)
    and drops it, lowering the level by one.
    @raise Invalid_argument at level 0. *)

val mod_drop : t -> t
(** Drop the last modulus without dividing (Table 1's Modswitch). *)

val sample_uniform : basis -> level:int -> Prng.t -> t
val sample_ternary : basis -> level:int -> Prng.t -> t
(** Coefficients in [{-1, 0, 1}] (secret keys). *)

val sample_error : basis -> level:int -> sigma:float -> Prng.t -> t
(** Discrete-Gaussian-ish error: rounded [sigma]-scaled normals. *)
