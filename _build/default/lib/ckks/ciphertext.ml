type t = {
  slots : float array;
  scale_bits : int;
  level : int;
  size : int;
  err : float;
}

let make ~slots ~scale_bits ~level ~size ~err =
  if scale_bits <= 0 then invalid_arg "Ciphertext.make: scale must be positive";
  if level < 0 then invalid_arg "Ciphertext.make: negative level";
  if size < 2 then invalid_arg "Ciphertext.make: size below 2";
  { slots; scale_bits; level; size; err }

let max_abs ct = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 ct.slots

let pp ppf ct =
  Format.fprintf ppf "@[<h>ct(%d slots, scale 2^%d, L%d, size %d, err %.3g)@]"
    (Array.length ct.slots) ct.scale_bits ct.level ct.size ct.err
