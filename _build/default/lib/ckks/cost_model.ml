type op =
  | Add_cp
  | Add_cc
  | Mul_cp
  | Mul_cc
  | Rotate
  | Relin
  | Rescale
  | Bootstrap
  | Modswitch

let all_ops =
  [ Add_cp; Add_cc; Mul_cp; Mul_cc; Rotate; Relin; Rescale; Bootstrap; Modswitch ]

let op_name = function
  | Add_cp -> "AddCP"
  | Add_cc -> "AddCC"
  | Mul_cp -> "MulCP"
  | Mul_cc -> "MulCC"
  | Rotate -> "Rotate"
  | Relin -> "Relinearization"
  | Rescale -> "Rescale"
  | Bootstrap -> "Bootstrap"
  | Modswitch -> "Modswitch"

let table_levels = [ 0; 2; 4; 6; 8; 10; 12; 14; 16 ]

(* Table 2 of the paper, ms, at levels 0,2,...,16.  [nan] marks entries the
   paper leaves blank (operation undefined or unmeasured at level 0); those
   are back-extrapolated from the first defined segment and clamped. *)
let raw = function
  | Add_cp -> [| 0.138; 0.575; 0.886; 1.268; 1.714; 1.931; 2.295; 2.807; 3.066 |]
  | Add_cc -> [| 0.164; 0.548; 0.936; 1.344; 1.690; 2.089; 2.561; 3.089; 3.574 |]
  | Mul_cp -> [| nan; 1.175; 1.993; 2.746; 3.553; 4.354; 5.175; 5.902; 6.837 |]
  | Mul_cc -> [| nan; 2.509; 4.237; 6.021; 7.750; 9.280; 11.129; 13.053; 15.638 |]
  | Rotate ->
      [| 58.422; 77.521; 93.799; 111.901; 130.940; 150.321; 241.560; 243.323; 290.575 |]
  | Relin ->
      [| nan; 76.947; 93.617; 111.819; 130.493; 149.586; 215.768; 242.031; 262.308 |]
  | Rescale -> [| nan; 9.085; 15.107; 21.333; 27.535; 33.792; 40.068; 46.372; 52.744 |]
  | Bootstrap ->
      [| nan; 21005.0; 23738.0; 26229.0; 30413.0; 34556.0; 37844.0; 41582.0; 44719.0 |]
  | Modswitch -> [| 0.0; 0.0; 0.0; 0.0; 0.0; 0.0; 0.0; 0.0; 0.0 |]

let modswitch_epsilon = 0.001

(* Fill the level-0 hole of a row by extrapolating the 2->4 segment
   backwards, clamped at a tenth of the level-2 value so costs stay
   positive and monotone enough for the optimiser. *)
let filled op =
  let row = Array.copy (raw op) in
  if Float.is_nan row.(0) then begin
    let backcast = row.(1) -. (row.(2) -. row.(1)) in
    row.(0) <- Float.max backcast (row.(1) /. 10.0)
  end;
  row

let tables = Hashtbl.create 16

let table op =
  match Hashtbl.find_opt tables op with
  | Some t -> t
  | None ->
      let t = filled op in
      Hashtbl.add tables op t;
      t

let cost op ~level =
  match op with
  | Modswitch -> modswitch_epsilon
  | _ ->
      let row = table op in
      let level = max level 0 in
      let x = float_of_int level /. 2.0 in
      let last = Array.length row - 1 in
      let v =
        if x >= float_of_int last then
          (* extrapolate with the slope of the final segment *)
          row.(last) +. ((x -. float_of_int last) *. (row.(last) -. row.(last - 1)))
        else begin
          let i = int_of_float (Float.floor x) in
          let frac = x -. float_of_int i in
          row.(i) +. (frac *. (row.(i + 1) -. row.(i)))
        end
      in
      Float.max v 0.0
