(** Modular arithmetic over word-sized primes.

    The exact CKKS core ({!Toy_ckks}) works in rings [Z_q[X]/(X^N + 1)]
    with primes [q < 2^31], so all products fit in OCaml's native 63-bit
    integers with no big-number dependency.  NTT-friendly primes satisfy
    [q = 1 (mod 2N)], giving a primitive [2N]-th root of unity for the
    negacyclic transform. *)

val add_mod : int -> int -> q:int -> int
val sub_mod : int -> int -> q:int -> int
val mul_mod : int -> int -> q:int -> int
val neg_mod : int -> q:int -> int

val pow_mod : int -> int -> q:int -> int
(** [pow_mod b e ~q] is [b^e mod q] by square-and-multiply; [e >= 0]. *)

val inv_mod : int -> q:int -> int
(** Multiplicative inverse modulo a prime (Fermat).
    @raise Invalid_argument on 0. *)

val centered : int -> q:int -> int
(** Representative in [(-q/2, q/2]] — for decoding and noise measurement. *)

val is_prime : int -> bool
(** Deterministic Miller–Rabin, valid for the 63-bit range. *)

val find_ntt_prime : bits:int -> order:int -> int
(** Largest prime below [2^bits] congruent to [1 (mod order)].
    @raise Not_found if none exists above [order]. *)

val primitive_root_of_unity : order:int -> q:int -> int
(** A primitive [order]-th root of unity modulo the prime [q] ([order]
    must divide [q - 1]).
    @raise Invalid_argument otherwise. *)
