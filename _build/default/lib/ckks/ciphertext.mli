(** Simulated RNS-CKKS ciphertexts.

    A ciphertext carries the decoded slot values, the scale (in bits), the
    level, the number of polynomial components ([size] — 2 normally, 3
    right after a ciphertext-ciphertext multiplication until
    relinearisation), and a running absolute-error bound standing in for
    cryptographic noise.  The evaluator is the only producer of
    ciphertexts with interesting states. *)

type t = {
  slots : float array;
  scale_bits : int;
  level : int;
  size : int;
  err : float;  (** Absolute per-slot error bound (noise estimate). *)
}

val make :
  slots:float array -> scale_bits:int -> level:int -> size:int -> err:float -> t

val max_abs : t -> float

val pp : Format.formatter -> t -> unit
