open Fhe_ir

type t = { dfg : Dfg.t; model : Model.t; input_name : string }

(* One stage of the composite sign polynomial: powers by ciphertext
   squaring; the coefficient multiplications and the final adds sink to
   the combination region during region assignment. *)
let lower_f_stage g x =
  let x2 = Dfg.mul_cc g x x in
  let x3 = Dfg.mul_cc g x2 x in
  let x4 = Dfg.mul_cc g x2 x2 in
  let x5 = Dfg.mul_cc g x2 x3 in
  let x7 = Dfg.mul_cc g x3 x4 in
  let term power idx =
    Dfg.mul_cp g power (Dfg.const g (Printf.sprintf "f7c%d" idx))
  in
  let t1 = term x 0 and t3 = term x3 1 and t5 = term x5 2 and t7 = term x7 3 in
  Dfg.add_cc g (Dfg.add_cc g t1 t3) (Dfg.add_cc g t5 t7)

let lower_apr g ~stages u =
  let s = ref u in
  for _ = 1 to max stages 1 do
    s := lower_f_stage g !s
  done;
  (* relu(u) = u * (0.5 + 0.5 * sign(u)) *)
  let half = Dfg.mul_cp g !s (Dfg.const g "apr_half") in
  let blend = Dfg.add_cp g half (Dfg.const g "apr_bias") in
  Dfg.mul_cc g u blend

(* The per-output-channel loop stays rolled (freq = channels); its
   accumulated partials are combined into the single packed output
   ciphertext by a frequency-1 rotate-and-add repack, so operations
   inserted after the layer (rescale, bootstrap) are charged once, as they
   execute on one ciphertext. *)
let repack g ~channels acc =
  if channels <= 1 then acc
  else Dfg.add_cc g acc (Dfg.rotate g acc channels)

let lower_conv g ~name ~taps ~channels x =
  if taps < 1 then invalid_arg "Lowering: conv needs at least one tap";
  let term t =
    let offset = t - (taps / 2) in
    let src = if offset = 0 then x else Dfg.rotate g x offset in
    Dfg.mul_cp g ~freq:channels src (Dfg.const g (Printf.sprintf "%s_w%d" name t))
  in
  let acc = ref (term 0) in
  for t = 1 to taps - 1 do
    acc := Dfg.add_cc g ~freq:channels !acc (term t)
  done;
  let biased = Dfg.add_cp g ~freq:channels !acc (Dfg.const g (name ^ "_b")) in
  repack g ~channels biased

let lower_pool g ~name ~taps x =
  let acc = ref x in
  for t = 1 to taps - 1 do
    acc := Dfg.add_cc g !acc (Dfg.rotate g x t)
  done;
  Dfg.mul_cp g !acc (Dfg.const g (name ^ "_scale"))

let lower_fc g ~name ~taps ~blocks x =
  let term t =
    let offset = (t + 1) * 16 in
    let src = if t = 0 then x else Dfg.rotate g x offset in
    Dfg.mul_cp g ~freq:blocks src (Dfg.const g (Printf.sprintf "%s_w%d" name t))
  in
  let acc = ref (term 0) in
  for t = 1 to taps - 1 do
    acc := Dfg.add_cc g ~freq:blocks !acc (term t)
  done;
  let biased = Dfg.add_cp g ~freq:blocks !acc (Dfg.const g (name ^ "_b")) in
  repack g ~channels:blocks biased

let rec lower_layer g layer x =
  match layer with
  | Model.Conv { name; taps; channels } -> lower_conv g ~name ~taps ~channels x
  | Model.Apr { stages } -> lower_apr g ~stages x
  | Model.Square -> Dfg.mul_cc g x x
  | Model.Pool { name; taps } -> lower_pool g ~name ~taps x
  | Model.Fc { name; taps; blocks } -> lower_fc g ~name ~taps ~blocks x
  | Model.Residual { body; project } ->
      let b = lower_seq g body x in
      let p = match project with [] -> x | layers -> lower_seq g layers x in
      Dfg.add_cc g b p
  | Model.Concat { name; branches } ->
      let outs = List.map (fun branch -> lower_seq g branch x) branches in
      let masked =
        List.mapi
          (fun i o -> Dfg.mul_cp g o (Dfg.const g (Printf.sprintf "%s_mask%d" name i)))
          outs
      in
      (match masked with
      | [] -> invalid_arg "Lowering: empty concat"
      | first :: rest -> List.fold_left (fun acc o -> Dfg.add_cc g acc o) first rest)

and lower_seq g layers x = List.fold_left (fun acc layer -> lower_layer g layer acc) x layers

let lower model =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let out = lower_seq g model.Model.layers x in
  Dfg.set_outputs g [ out ];
  (match Dfg.validate g with
  | Ok () -> ()
  | Error (msg :: _) -> invalid_arg ("Lowering: invalid graph: " ^ msg)
  | Error [] -> assert false);
  { dfg = g; model; input_name = "x" }

(* --- Constant payloads ------------------------------------------------- *)

let hash_name name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    name;
  !h

let has_suffix ~suffix name =
  let ls = String.length suffix and ln = String.length name in
  ln >= ls && String.sub name (ln - ls) ls = suffix

let contains_sub name sub =
  let ls = String.length sub and ln = String.length name in
  let rec go i = i + ls <= ln && (String.sub name i ls = sub || go (i + 1)) in
  go 0

let taps_of_layer model name =
  (* Width of the reduction feeding a weight named [name_w<t>]. *)
  let rec scan layers =
    List.find_map
      (fun layer ->
        match layer with
        | Model.Conv { name = n; taps; _ } when contains_sub name n -> Some taps
        | Model.Fc { name = n; taps; _ } when contains_sub name n -> Some taps
        | Model.Pool { name = n; taps } when contains_sub name n -> Some taps
        | Model.Residual { body; project } -> scan (body @ project)
        | Model.Concat { branches; _ } -> scan (List.concat branches)
        | _ -> None)
      layers
  in
  Option.value (scan model.Model.layers) ~default:9

let base_resolver t ~dim name =
  let fill v = Array.make dim v in
  if String.length name >= 4 && String.sub name 0 3 = "f7c" then
    fill Poly_approx.f7.(Char.code name.[3] - Char.code '0')
  else if name = "apr_half" then fill 0.5
  else if name = "apr_bias" then fill 0.5
  else if has_suffix ~suffix:"_scale" name then
    fill (1.0 /. float_of_int (taps_of_layer t.model name))
  else if contains_sub name "_mask" then fill 0.5
  else if has_suffix ~suffix:"_b" name then
    let rng = Ckks.Prng.create (hash_name name) in
    Array.init dim (fun _ -> Ckks.Prng.uniform rng ~lo:(-0.02) ~hi:0.02)
  else begin
    (* A weight tap: the reduction sums [taps] terms and the repack adds
       two partials, so amplitude 0.45/taps keeps layer outputs inside the
       [-1, 1] domain of the polynomial activation. *)
    let amplitude = 0.45 /. float_of_int (taps_of_layer t.model name) in
    let rng = Ckks.Prng.create (hash_name name) in
    Array.init dim (fun _ -> Ckks.Prng.uniform rng ~lo:(-.amplitude) ~hi:amplitude)
  end

let resolver t ~dim = Passes.Const_fold.resolving (base_resolver t ~dim)
