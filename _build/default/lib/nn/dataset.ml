type sample = { image : float array; label : int }

let images ?(seed = 0x0DA7A5E7L) ~dim ~count () =
  let rng = Ckks.Prng.create seed in
  Array.init count (fun _ -> Array.init dim (fun _ -> Ckks.Prng.uniform rng ~lo:(-1.0) ~hi:1.0))

let argmax ~classes v =
  let classes = min classes (Array.length v) in
  let best = ref 0 in
  for i = 1 to classes - 1 do
    if v.(i) > v.(!best) then best := i
  done;
  !best

let labelled ?(seed = 0x0DA7A5E7L) ?(perturbation = 0.08) ~dim ~count ~classes ~infer () =
  let rng = Ckks.Prng.create (Int64.add seed 1L) in
  let imgs = images ~seed ~dim ~count () in
  Array.map
    (fun image ->
      (* Ground-truth labels are the model's own class scores perturbed
         relative to their spread: the model then scores high but not
         perfectly against them, like a trained network on held-out data. *)
      let scores = infer image in
      let classes = min classes (Array.length scores) in
      let lo = ref infinity and hi = ref neg_infinity in
      for c = 0 to classes - 1 do
        lo := Float.min !lo scores.(c);
        hi := Float.max !hi scores.(c)
      done;
      let spread = Float.max (!hi -. !lo) 1e-9 in
      let noisy =
        Array.init classes (fun c ->
            scores.(c) +. (perturbation *. spread *. Ckks.Prng.gaussian rng))
      in
      { image; label = argmax ~classes noisy })
    imgs
