(** Synthetic classification dataset (substitution for CIFAR-10).

    Deterministic pseudo-random "images" packed in SIMD slot vectors with
    values in [[-1, 1]].  Labels come from the model's own plain-precision
    class scores perturbed relative to their spread, so the unencrypted
    model scores high but below 100% (like a trained network on held-out
    data) and the gap between the unencrypted and encrypted columns
    isolates exactly the error introduced by RNS-CKKS scale management
    and noise — the quantity the paper's RQ3 validates. *)

type sample = { image : float array; label : int }

val images : ?seed:int64 -> dim:int -> count:int -> unit -> float array array
(** Deterministic images with values in [[-1, 1]]. *)

val labelled :
  ?seed:int64 ->
  ?perturbation:float ->
  dim:int ->
  count:int ->
  classes:int ->
  infer:(float array -> float array) ->
  unit ->
  sample array
(** [infer] is the plain reference inference; the label of each image is
    the argmax of its class scores after adding Gaussian noise of
    [perturbation] times the score spread (default 0.08). *)

val argmax : classes:int -> float array -> int
(** Index of the largest of the first [classes] slots. *)
