(** Polynomial approximation of ReLU.

    RNS-CKKS evaluates only polynomials, so ReLU is replaced by the
    composite minimax construction of Lee et al. (the paper's reference
    [25]): [relu(x) = x * (1 + sign(x)) / 2] with [sign] approximated by a
    composition of odd degree-7 minimax polynomials
    [f(x) = (35x - 35x^3 + 21x^5 - 5x^7) / 16].  Each stage sharpens the
    transition around zero; the default two-stage composition has
    multiplicative depth 10, close to the depth-11 approximation used in
    the paper's evaluation. *)

val f7 : float array
(** Coefficients of the odd stage polynomial indexed by power:
    [f7.(k)] multiplies [x^(2k+1)] for [k] in [0..3]. *)

val sign : stages:int -> float -> float
(** The composed sign approximation on [-1, 1]. *)

val relu : stages:int -> float -> float
(** The ReLU approximation on [-1, 1]. *)

val depth : stages:int -> int
(** Multiplicative depth of the lowered approximation
    (4 per stage + 2 for the final blend). *)
