(** Model zoo.

    Layer specifications mirror the packed single-ciphertext lowering used
    by the paper (one CIFAR image per ciphertext): a convolution is a sum
    of [taps] rotate-multiply terms whose per-output-channel loop stays
    rolled with trip count [channels] (Section 4.1), an activation is the
    composite polynomial of {!Poly_approx}, pooling and fully connected
    layers are rotate-and-sum reductions.

    The seven evaluation models (ResNet-20/44/110, AlexNet, VGG16,
    SqueezeNet, MobileNet) reproduce the depth and layer structure that
    drives the paper's Tables 3-5 and Figures 6-7; channel counts follow
    the CIFAR-10 variants. *)

type layer =
  | Conv of { name : string; taps : int; channels : int }
      (** [taps] spatial kernel positions; [channels] rolled trip count. *)
  | Apr of { stages : int }  (** Approximate ReLU (depth [4*stages + 2]). *)
  | Square  (** [x^2] activation (depth 1). *)
  | Pool of { name : string; taps : int }  (** Average pooling (depth 1). *)
  | Fc of { name : string; taps : int; blocks : int }
      (** Rotate-and-sum matrix-vector product; [blocks] rolled count. *)
  | Residual of { body : layer list; project : layer list }
      (** [y = body x + project x]; empty [project] is the identity skip. *)
  | Concat of { name : string; branches : layer list list }
      (** Branch outputs re-packed with plaintext masks (depth 1). *)

type t = { name : string; layers : layer list; classes : int }

val depth : t -> int
(** Multiplicative depth of the lowered model. *)

val resnet : int -> t
(** [resnet n] builds ResNet-(6n+2): [resnet 3] is ResNet-20, [resnet 7]
    ResNet-44, [resnet 18] ResNet-110. *)

val resnet20 : t
val resnet44 : t
val resnet110 : t
val alexnet : t
val vgg16 : t
val squeezenet : t
val mobilenet : t

val paper_models : t list
(** The seven models of the evaluation, in the paper's table order. *)

val lenet5 : t
(** The small model the paper quotes for HECATE/ELASM compile times. *)

val tiny : t
(** A minimal conv-APR-conv model for tests and the quickstart. *)

val by_name : string -> t option
