(** End-to-end inference: plain reference vs simulated encrypted runs, and
    the fidelity experiment behind Table 6. *)

type fidelity = {
  model : string;
  samples : int;
  unencrypted_acc : float;  (** Plain inference vs dataset labels. *)
  encrypted_acc : float;  (** Simulated encrypted inference vs labels. *)
  accuracy_loss : float;  (** [unencrypted_acc - encrypted_acc]. *)
  agreement : float;  (** Fraction of samples where both predict alike. *)
  max_abs_err : float;  (** Worst slot error across the class scores. *)
  mean_latency_ms : float;  (** Simulated per-inference latency. *)
}

val run_plain : Lowering.t -> dim:int -> float array -> float array
(** Reference inference of the (unmanaged) lowered model. *)

val run_encrypted :
  Ckks.Evaluator.t -> Lowering.t -> managed:Fhe_ir.Dfg.t -> float array -> float array * float
(** Simulated encrypted inference on a managed graph; returns the
    decrypted class scores and the simulated latency (ms). *)

val fidelity :
  ?samples:int ->
  ?dim:int ->
  ?seed:int64 ->
  Ckks.Params.t ->
  Lowering.t ->
  managed:Fhe_ir.Dfg.t ->
  fidelity
(** Runs the Table 6 experiment on the synthetic dataset. *)

val pp_fidelity : Format.formatter -> fidelity -> unit
