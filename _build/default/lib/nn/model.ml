type layer =
  | Conv of { name : string; taps : int; channels : int }
  | Apr of { stages : int }
  | Square
  | Pool of { name : string; taps : int }
  | Fc of { name : string; taps : int; blocks : int }
  | Residual of { body : layer list; project : layer list }
  | Concat of { name : string; branches : layer list list }

type t = { name : string; layers : layer list; classes : int }

let rec layer_depth = function
  | Conv _ -> 1
  | Apr { stages } -> Poly_approx.depth ~stages
  | Square -> 1
  | Pool _ -> 1
  | Fc _ -> 1
  | Residual { body; project } ->
      let d b = List.fold_left (fun acc l -> acc + layer_depth l) 0 b in
      max (d body) (d project)
  | Concat { branches; _ } ->
      1 + List.fold_left (fun acc b -> max acc (List.fold_left (fun a l -> a + layer_depth l) 0 b)) 0 branches

let depth t = List.fold_left (fun acc l -> acc + layer_depth l) 0 t.layers

let apr = Apr { stages = 2 }

(* --- ResNet-(6n+2) for CIFAR-10 -------------------------------------- *)

let resnet n =
  let block stage idx channels ~project =
    let tag = Printf.sprintf "s%d_b%d" stage idx in
    Residual
      {
        body =
          [
            Conv { name = tag ^ "_conv1"; taps = 9; channels };
            apr;
            Conv { name = tag ^ "_conv2"; taps = 9; channels };
          ];
        project = (if project then [ Conv { name = tag ^ "_proj"; taps = 1; channels } ] else []);
      }
  in
  let stage s channels ~first =
    List.concat
      (List.init n (fun i ->
           [ block s i channels ~project:(first && i = 0); apr ]))
  in
  {
    name = Printf.sprintf "ResNet%d" ((6 * n) + 2);
    layers =
      [ Conv { name = "stem"; taps = 9; channels = 16 }; apr ]
      @ stage 1 16 ~first:false
      @ stage 2 32 ~first:true
      @ stage 3 64 ~first:true
      @ [
          Pool { name = "gap"; taps = 8 };
          Fc { name = "fc"; taps = 16; blocks = 1 };
        ];
    classes = 10;
  }

let resnet20 = resnet 3
let resnet44 = resnet 7
let resnet110 = resnet 18

(* --- AlexNet (CIFAR variant) ------------------------------------------ *)

let alexnet =
  {
    name = "AlexNet";
    layers =
      [
        Conv { name = "conv1"; taps = 25; channels = 64 };
        apr;
        Pool { name = "pool1"; taps = 4 };
        Conv { name = "conv2"; taps = 25; channels = 192 };
        apr;
        Pool { name = "pool2"; taps = 4 };
        Conv { name = "conv3"; taps = 9; channels = 384 };
        apr;
        Conv { name = "conv4"; taps = 9; channels = 256 };
        apr;
        Conv { name = "conv5"; taps = 9; channels = 256 };
        apr;
        Pool { name = "pool3"; taps = 4 };
        Fc { name = "fc1"; taps = 16; blocks = 64 };
        apr;
        Fc { name = "fc2"; taps = 16; blocks = 64 };
        apr;
        Fc { name = "fc3"; taps = 16; blocks = 1 };
      ];
    classes = 10;
  }

(* --- VGG16 ------------------------------------------------------------- *)

let vgg16 =
  let conv i channels = [ Conv { name = Printf.sprintf "conv%d" i; taps = 9; channels }; apr ] in
  let pool i = [ Pool { name = Printf.sprintf "pool%d" i; taps = 4 } ] in
  {
    name = "VGG16";
    layers =
      conv 1 64 @ conv 2 64 @ pool 1
      @ conv 3 128 @ conv 4 128 @ pool 2
      @ conv 5 256 @ conv 6 256 @ conv 7 256 @ pool 3
      @ conv 8 512 @ conv 9 512 @ conv 10 512 @ pool 4
      @ conv 11 512 @ conv 12 512 @ conv 13 512 @ pool 5
      @ [
          Fc { name = "fc1"; taps = 16; blocks = 128 };
          apr;
          Fc { name = "fc2"; taps = 16; blocks = 128 };
          apr;
          Fc { name = "fc3"; taps = 16; blocks = 1 };
        ];
    classes = 10;
  }

(* --- SqueezeNet --------------------------------------------------------- *)

let squeezenet =
  let fire i squeeze expand =
    [
      Conv { name = Printf.sprintf "fire%d_squeeze" i; taps = 1; channels = squeeze };
      apr;
      Concat
        {
          name = Printf.sprintf "fire%d" i;
          branches =
            [
              [ Conv { name = Printf.sprintf "fire%d_e1" i; taps = 1; channels = expand } ];
              [ Conv { name = Printf.sprintf "fire%d_e3" i; taps = 9; channels = expand } ];
            ];
        };
      apr;
    ]
  in
  {
    name = "SqueezeNet";
    layers =
      [ Conv { name = "stem"; taps = 9; channels = 64 }; apr ]
      @ fire 2 16 64 @ fire 3 16 64
      @ [ Pool { name = "pool1"; taps = 4 } ]
      @ fire 4 32 128 @ fire 5 32 128
      @ [ Pool { name = "pool2"; taps = 4 } ]
      @ fire 6 48 192 @ fire 7 48 192 @ fire 8 64 256
      @ [
          Conv { name = "conv10"; taps = 1; channels = 10 };
          Pool { name = "gap"; taps = 8 };
        ];
    classes = 10;
  }

(* --- MobileNet ----------------------------------------------------------- *)

let mobilenet =
  let dw_pw i channels =
    [
      Conv { name = Printf.sprintf "dw%d" i; taps = 9; channels };
      apr;
      Conv { name = Printf.sprintf "pw%d" i; taps = 1; channels };
      apr;
    ]
  in
  {
    name = "MobileNet";
    layers =
      [ Conv { name = "stem"; taps = 9; channels = 32 }; apr ]
      @ List.concat
          (List.mapi
             (fun i c -> dw_pw (i + 1) c)
             [ 64; 128; 128; 256; 256; 512; 512; 512; 512; 512; 512; 1024; 1024 ])
      @ [
          Pool { name = "gap"; taps = 8 };
          Fc { name = "fc"; taps = 16; blocks = 1 };
        ];
    classes = 10;
  }

let paper_models =
  [ resnet20; resnet44; resnet110; alexnet; vgg16; squeezenet; mobilenet ]

let lenet5 =
  {
    name = "LeNet5";
    layers =
      [
        Conv { name = "conv1"; taps = 25; channels = 6 };
        Square;
        Pool { name = "pool1"; taps = 4 };
        Conv { name = "conv2"; taps = 25; channels = 16 };
        Square;
        Pool { name = "pool2"; taps = 4 };
        Fc { name = "fc1"; taps = 16; blocks = 8 };
        Square;
        Fc { name = "fc2"; taps = 16; blocks = 1 };
      ];
    classes = 10;
  }

let tiny =
  {
    name = "Tiny";
    layers =
      [
        Conv { name = "conv1"; taps = 3; channels = 4 };
        apr;
        Conv { name = "conv2"; taps = 3; channels = 4 };
      ];
    classes = 4;
  }

let by_name name =
  let all = paper_models @ [ lenet5; tiny ] in
  List.find_opt (fun m -> String.lowercase_ascii m.name = String.lowercase_ascii name) all
