open Fhe_ir

let run g ~input ~consts =
  let values = Hashtbl.create (Dfg.node_count g) in
  let value id = Hashtbl.find values id in
  let binary a b f =
    if Array.length a <> Array.length b then invalid_arg "Plain_eval: slot mismatch";
    Array.init (Array.length a) (fun i -> f a.(i) b.(i))
  in
  List.iter
    (fun id ->
      let node = Dfg.node g id in
      let arg i = value node.Dfg.args.(i) in
      let v =
        match node.Dfg.kind with
        | Op.Input { name; _ } -> input name
        | Op.Const { name } -> consts name
        | Op.Add_cc | Op.Add_cp -> binary (arg 0) (arg 1) ( +. )
        | Op.Mul_cc | Op.Mul_cp -> binary (arg 0) (arg 1) ( *. )
        | Op.Rotate k ->
            let a = arg 0 in
            let n = Array.length a in
            let k = ((k mod n) + n) mod n in
            Array.init n (fun i -> a.((i + k) mod n))
        | Op.Relin | Op.Rescale | Op.Modswitch | Op.Bootstrap _ -> arg 0
      in
      Hashtbl.replace values id v)
    (Dfg.topo_order g);
  List.map value (Dfg.outputs g)
