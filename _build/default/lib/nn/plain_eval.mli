(** Plain (unencrypted) reference evaluation of an FHE DFG.

    Executes the same vector program in exact double precision: arithmetic
    and rotations act on the slot vectors, while relinearisation, SMOs and
    bootstrapping are the identity.  This is the "unencrypted inference"
    column of Table 6 — the managed and unmanaged graphs of one model
    evaluate to the same plain result, so the fidelity comparison isolates
    the error introduced by fixed-point scales and simulated noise. *)

val run :
  Fhe_ir.Dfg.t ->
  input:(string -> float array) ->
  consts:(string -> float array) ->
  float array list
(** Program outputs in DFG output order. *)
