let f7 = [| 35.0 /. 16.0; -35.0 /. 16.0; 21.0 /. 16.0; -5.0 /. 16.0 |]

let f_stage x =
  let x2 = x *. x in
  let x3 = x2 *. x in
  let x5 = x2 *. x3 in
  let x7 = x2 *. x5 in
  (f7.(0) *. x) +. (f7.(1) *. x3) +. (f7.(2) *. x5) +. (f7.(3) *. x7)

let sign ~stages x =
  let rec go k v = if k = 0 then v else go (k - 1) (f_stage v) in
  go (max stages 1) x

let relu ~stages x = x *. ((1.0 +. sign ~stages x) /. 2.0)

let depth ~stages = (4 * max stages 1) + 2
