(** Lowering of model specifications to FHE data-flow graphs.

    The packing model is the paper's: one image per ciphertext, SIMD
    slots.  A convolution becomes [sum_t rotate(x, o_t) * w_t] with the
    output-channel loop rolled into node frequencies; the approximate ReLU
    becomes the composite polynomial of {!Poly_approx} (powers by repeated
    ciphertext squaring, coefficient multiplications sinking to the final
    combination region); pooling and fully connected layers are
    rotate-and-sum reductions.

    Constants are symbolic: every weight/bias/mask is a [Const] node whose
    payload is generated deterministically from its name ({!resolver}), so
    graphs stay value-free and runs are reproducible. *)

type t = {
  dfg : Fhe_ir.Dfg.t;
  model : Model.t;
  input_name : string;
}

val lower : Model.t -> t
(** @raise Invalid_argument if the model produces an invalid graph. *)

val resolver : t -> dim:int -> string -> float array
(** Deterministic constant payloads: activation-polynomial coefficients
    and blend constants by value; weights, biases and masks pseudo-random
    from the constant's name, scaled to keep activations within the
    [[-1, 1]] domain of the polynomial approximation.  Understands the
    folded names produced by {!Passes.Const_fold}. *)
