lib/nn/inference.mli: Ckks Fhe_ir Format Lowering
