lib/nn/lowering.mli: Fhe_ir Model
