lib/nn/poly_approx.mli:
