lib/nn/inference.ml: Array Ckks Dataset Fhe_ir Float Format Int64 Lowering Model Plain_eval
