lib/nn/dataset.mli:
