lib/nn/model.mli:
