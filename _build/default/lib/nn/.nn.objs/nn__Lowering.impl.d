lib/nn/lowering.ml: Array Char Ckks Dfg Fhe_ir Int64 List Model Option Passes Poly_approx Printf String
