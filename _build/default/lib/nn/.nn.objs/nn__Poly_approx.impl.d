lib/nn/poly_approx.ml: Array
