lib/nn/model.ml: List Poly_approx Printf String
