lib/nn/plain_eval.mli: Fhe_ir
