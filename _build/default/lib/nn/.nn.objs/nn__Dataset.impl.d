lib/nn/dataset.ml: Array Ckks Float Int64
