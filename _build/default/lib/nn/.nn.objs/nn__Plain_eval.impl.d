lib/nn/plain_eval.ml: Array Dfg Fhe_ir Hashtbl List Op
