type fidelity = {
  model : string;
  samples : int;
  unencrypted_acc : float;
  encrypted_acc : float;
  accuracy_loss : float;
  agreement : float;
  max_abs_err : float;
  mean_latency_ms : float;
}

let run_plain lowered ~dim image =
  let consts = Lowering.resolver lowered ~dim in
  match
    Plain_eval.run lowered.Lowering.dfg
      ~input:(fun _ -> image)
      ~consts
  with
  | [ out ] -> out
  | outs -> (
      match outs with [] -> invalid_arg "Inference: no outputs" | o :: _ -> o)

let run_encrypted ev lowered ~managed image =
  let prm = Ckks.Evaluator.params ev in
  let dim = Array.length image in
  let consts = Lowering.resolver lowered ~dim in
  let env =
    { Fhe_ir.Interp.inputs = [ (lowered.Lowering.input_name, image) ]; consts }
  in
  ignore prm;
  let result = Fhe_ir.Interp.run ev managed env in
  match result.Fhe_ir.Interp.outputs with
  | out :: _ -> (Ckks.Evaluator.decrypt ev out, result.Fhe_ir.Interp.latency_ms)
  | [] -> invalid_arg "Inference: managed graph has no outputs"

let fidelity ?(samples = 20) ?(dim = 64) ?(seed = 0x7AB1E6L) prm lowered ~managed =
  let classes = lowered.Lowering.model.Model.classes in
  let infer = run_plain lowered ~dim in
  let data = Dataset.labelled ~seed ~dim ~count:samples ~classes ~infer () in
  let correct_plain = ref 0
  and correct_enc = ref 0
  and agree = ref 0
  and max_err = ref 0.0
  and latency = ref 0.0 in
  Array.iteri
    (fun i sample ->
      let plain = infer sample.Dataset.image in
      let ev = Ckks.Evaluator.create ~seed:(Int64.add seed (Int64.of_int i)) prm in
      let enc, lat = run_encrypted ev lowered ~managed sample.Dataset.image in
      latency := !latency +. lat;
      let p_pred = Dataset.argmax ~classes plain
      and e_pred = Dataset.argmax ~classes enc in
      if p_pred = sample.Dataset.label then incr correct_plain;
      if e_pred = sample.Dataset.label then incr correct_enc;
      if p_pred = e_pred then incr agree;
      for c = 0 to min classes (Array.length enc) - 1 do
        max_err := Float.max !max_err (Float.abs (enc.(c) -. plain.(c)))
      done)
    data;
  let n = float_of_int (max samples 1) in
  let ua = float_of_int !correct_plain /. n
  and ea = float_of_int !correct_enc /. n in
  {
    model = lowered.Lowering.model.Model.name;
    samples;
    unencrypted_acc = ua;
    encrypted_acc = ea;
    accuracy_loss = ua -. ea;
    agreement = float_of_int !agree /. n;
    max_abs_err = !max_err;
    mean_latency_ms = !latency /. n;
  }

let pp_fidelity ppf f =
  Format.fprintf ppf
    "@[<h>%s: unencrypted %.1f%%, encrypted %.1f%%, loss %+.1f%%, agreement %.1f%%, max \
     |err| %.2e@]"
    f.model (100.0 *. f.unencrypted_acc) (100.0 *. f.encrypted_acc)
    (100.0 *. f.accuracy_loss) (100.0 *. f.agreement) f.max_abs_err
