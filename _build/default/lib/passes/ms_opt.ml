open Fhe_ir

(* One hoist: delete modswitch [m] and re-insert modswitches on the
   ciphertext operands of [target] (which may be the producer itself, or
   the mul_cc under a relin). *)
let hoist g ~m ~producer ~target =
  let target_node = Dfg.node g target in
  Array.iteri
    (fun i a ->
      if Op.produces_ct (Dfg.node g a).Dfg.kind then
        ignore (Dfg.wrap_operand g ~user:target ~arg_index:i Op.Modswitch))
    target_node.Dfg.args;
  Dfg.replace_uses g ~old_id:m ~new_id:producer;
  Dfg.kill g m

let run prm g =
  let hoists = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let info = Scale_check.infer prm g in
    let try_node node =
      if (not node.Dfg.dead) && node.Dfg.kind = Op.Modswitch && not !changed then begin
        let m = node.Dfg.id in
        let producer = node.Dfg.args.(0) in
        let p = Dfg.node g producer in
        if p.Dfg.users = [ m ] && not (List.mem producer (Dfg.outputs g)) then begin
          let level = info.(producer).Scale_check.level in
          let ok_levels target =
            (* Every ciphertext operand of [target] must have a level to
               spend, and multiplications must keep capacity at the lower
               level. *)
            level >= 1
            && Array.for_all
                 (fun a ->
                   (not (Op.produces_ct (Dfg.node g a).Dfg.kind))
                   || info.(a).Scale_check.level >= 1)
                 (Dfg.node g target).Dfg.args
            && Ckks.Evaluator.capacity_ok prm
                 ~scale_bits:info.(producer).Scale_check.scale_bits ~level:(level - 1)
          in
          match p.Dfg.kind with
          | Op.Rotate _ | Op.Add_cc | Op.Add_cp | Op.Mul_cp ->
              if ok_levels producer then begin
                hoist g ~m ~producer ~target:producer;
                incr hoists;
                changed := true
              end
          | Op.Relin -> (
              let mul = p.Dfg.args.(0) in
              let mul_node = Dfg.node g mul in
              if mul_node.Dfg.kind = Op.Mul_cc && mul_node.Dfg.users = [ producer ]
                 && (not (List.mem mul (Dfg.outputs g)))
                 && ok_levels mul
              then begin
                hoist g ~m ~producer ~target:mul;
                incr hoists;
                changed := true
              end)
          | _ -> ()
        end
      end
    in
    List.iter try_node (Dfg.live_nodes g)
  done;
  !hoists
