(** Dead-code elimination: iteratively kill nodes with no users that are
    not program outputs.  Returns the number of nodes removed. *)

val run : Fhe_ir.Dfg.t -> int
