(** Modswitch hoisting.

    Moves [Modswitch] nodes above their producing operation when that
    producer has no other consumer, so the producer executes at the lower
    level (Table 2 latencies grow with the level).  This realises the
    Figure 3b preference — multiply first at the lower level — and the
    "modswitch optimisation" the paper grants ReSBM_max for lowering
    excessively bootstrapped ciphertexts.  Hoisting stops at inputs,
    constants, bootstraps and SMOs, and respects the capacity constraint
    when crossing multiplications.  Returns the number of hoists. *)

val run : Ckks.Params.t -> Fhe_ir.Dfg.t -> int
