(** Common-subexpression elimination.

    Structurally identical nodes (same kind, same arguments after
    canonicalisation, same frequency) are merged, in topological order so
    that chains collapse transitively.  Commutative operations ([Add_cc],
    [Mul_cc]) canonicalise their argument order.  This is the
    post-optimisation of Section 4.6 that merges the two redundant
    bootstraps of Figure 5a.  Returns the number of nodes merged. *)

val run : Fhe_ir.Dfg.t -> int
