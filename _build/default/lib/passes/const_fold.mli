(** Constant folding for plaintext multiplier chains.

    Two rewrites:

    - chain folding: [Mul_cp (Mul_cp (x, c1), c2)] becomes
      [Mul_cp (x, "(c1*c2)")], saving one multiplicative level;
    - distribution: [Mul_cc (Mul_cp (a, c1), Mul_cp (b, c2))] becomes
      [Mul_cp (Mul_cc (a, b), "(c1*c2)")], hoisting plaintext
      coefficients out of ciphertext products so that CSE can share the
      underlying power (the pre-optimisation that turns Figure 5a into
      the optimal plan of Figure 5b: [(a1*x)^2] becomes
      [(a1*a1) * x^2] and [x^2] merges with the power chain of [y]).

    The folded constant is a fresh [Const] whose name records the
    product; {!resolving} wraps a constant resolver so interpretation
    evaluates folded names transparently.  Returns the number of
    rewrites performed. *)

val run : Fhe_ir.Dfg.t -> int

val resolving : (string -> float array) -> string -> float array
(** [resolving base] resolves "(a*b)" as the element-wise product of
    [resolving base "a"] and [resolving base "b"], and defers anything
    else to [base]. *)
