open Fhe_ir

let const_name g id =
  match (Dfg.node g id).Dfg.kind with Op.Const { name } -> Some name | _ -> None

(* Distribution: a relinearised ciphertext product of two plaintext-scaled
   values becomes a plaintext-scaled product of the raw values. *)
let distribute g (relin_node : Dfg.node) folds changed =
  match relin_node.Dfg.args with
  | [| raw |] -> (
      let raw_node = Dfg.node g raw in
      if raw_node.Dfg.kind = Op.Mul_cc && raw_node.Dfg.users = [ relin_node.Dfg.id ] then
        let scaled id =
          let n = Dfg.node g id in
          match n.Dfg.kind with
          | Op.Mul_cp -> (
              match const_name g n.Dfg.args.(1) with
              | Some c -> Some (n.Dfg.args.(0), c)
              | None -> None)
          | _ -> None
        in
        let a = raw_node.Dfg.args.(0) and b = raw_node.Dfg.args.(1) in
        let a_ok =
          (Dfg.node g a).Dfg.users
          |> List.for_all (fun u -> u = raw_node.Dfg.id)
        and b_ok =
          (Dfg.node g b).Dfg.users
          |> List.for_all (fun u -> u = raw_node.Dfg.id)
        in
        match (scaled a, scaled b) with
        | Some (base_a, ca), Some (base_b, cb)
          when a_ok && b_ok
               && (not (List.mem a (Dfg.outputs g)))
               && not (List.mem b (Dfg.outputs g)) ->
            let product = Dfg.mul_cc g ~freq:relin_node.Dfg.freq base_a base_b in
            let folded = Dfg.const g (Printf.sprintf "(%s*%s)" ca cb) in
            let replacement = Dfg.mul_cp g ~freq:relin_node.Dfg.freq product folded in
            Dfg.replace_uses g ~old_id:relin_node.Dfg.id ~new_id:replacement;
            Dfg.kill g relin_node.Dfg.id;
            Dfg.kill g raw;
            if (Dfg.node g a).Dfg.users = [] then Dfg.kill g a;
            if a <> b && (Dfg.node g b).Dfg.users = [] then Dfg.kill g b;
            incr folds;
            changed := true
        | _ -> ())
  | _ -> ()

let run g =
  let folds = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun node ->
        if (not node.Dfg.dead) && node.Dfg.kind = Op.Relin && not !changed then
          distribute g node folds changed;
        if (not node.Dfg.dead) && node.Dfg.kind = Op.Mul_cp then begin
          let inner = node.Dfg.args.(0) in
          let inner_node = Dfg.node g inner in
          if
            inner_node.Dfg.kind = Op.Mul_cp
            && inner_node.Dfg.users = [ node.Dfg.id ]
            && not (List.mem inner (Dfg.outputs g))
          then
            match (const_name g node.Dfg.args.(1), const_name g inner_node.Dfg.args.(0 + 1)) with
            | Some c_outer, Some c_inner ->
                let folded = Dfg.const g (Printf.sprintf "(%s*%s)" c_inner c_outer) in
                Dfg.set_arg g ~user:node.Dfg.id ~arg_index:0 inner_node.Dfg.args.(0);
                Dfg.set_arg g ~user:node.Dfg.id ~arg_index:1 folded;
                if inner_node.Dfg.users = [] then Dfg.kill g inner;
                incr folds;
                changed := true
            | _ -> ()
        end)
      (Dfg.live_nodes g)
  done;
  !folds

let rec resolving base name =
  let n = String.length name in
  if n >= 2 && name.[0] = '(' && name.[n - 1] = ')' then begin
    (* Find the top-level '*' separator. *)
    let inner = String.sub name 1 (n - 2) in
    let depth = ref 0 and split = ref (-1) in
    String.iteri
      (fun i c ->
        match c with
        | '(' -> incr depth
        | ')' -> decr depth
        | '*' when !depth = 0 && !split < 0 -> split := i
        | _ -> ())
      inner;
    if !split < 0 then base name
    else begin
      let a = resolving base (String.sub inner 0 !split)
      and b = resolving base (String.sub inner (!split + 1) (String.length inner - !split - 1)) in
      if Array.length a <> Array.length b then base name
      else Array.init (Array.length a) (fun i -> a.(i) *. b.(i))
    end
  end
  else base name
