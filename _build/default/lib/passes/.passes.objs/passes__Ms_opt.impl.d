lib/passes/ms_opt.ml: Array Ckks Dfg Fhe_ir List Op Scale_check
