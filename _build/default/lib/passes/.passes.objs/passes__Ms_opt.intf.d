lib/passes/ms_opt.mli: Ckks Fhe_ir
