lib/passes/dce.ml: Dfg Fhe_ir List
