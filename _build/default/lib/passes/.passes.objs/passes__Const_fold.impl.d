lib/passes/const_fold.ml: Array Dfg Fhe_ir List Op Printf String
