lib/passes/dce.mli: Fhe_ir
