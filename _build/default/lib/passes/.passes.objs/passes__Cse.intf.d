lib/passes/cse.mli: Fhe_ir
