lib/passes/const_fold.mli: Fhe_ir
