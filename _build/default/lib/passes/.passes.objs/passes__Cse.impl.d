lib/passes/cse.ml: Array Dfg Fhe_ir Hashtbl List Op
