open Fhe_ir

let run g =
  let outputs = Dfg.outputs g in
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun node ->
        let id = node.Dfg.id in
        if node.Dfg.users = [] && not (List.mem id outputs) then begin
          Dfg.kill g id;
          incr removed;
          changed := true
        end)
      (Dfg.live_nodes g)
  done;
  !removed
