open Fhe_ir

type key = { kind : Op.kind; args : int list; freq : int }

let canonical_args kind args =
  match kind with
  | Op.Add_cc | Op.Mul_cc -> List.sort compare args
  | _ -> args

let run g =
  let seen : (key, int) Hashtbl.t = Hashtbl.create 64 in
  let merged = ref 0 in
  List.iter
    (fun node ->
      let id = node.Dfg.id in
      if not node.Dfg.dead then begin
        let key =
          {
            kind = node.Dfg.kind;
            args = canonical_args node.Dfg.kind (Array.to_list node.Dfg.args);
            freq = node.Dfg.freq;
          }
        in
        match Hashtbl.find_opt seen key with
        | Some canon when canon <> id ->
            Dfg.replace_uses g ~old_id:id ~new_id:canon;
            if node.Dfg.users = [] && not (List.mem id (Dfg.outputs g)) then begin
              Dfg.kill g id;
              incr merged
            end
        | _ -> Hashtbl.add seen key id
      end)
    (List.map (Dfg.node g) (Dfg.topo_order g));
  !merged
