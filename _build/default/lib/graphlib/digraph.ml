type t = {
  mutable succ : int list array;
  mutable pred : int list array;
  mutable n : int;
  mutable m : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { succ = Array.make capacity []; pred = Array.make capacity []; n = 0; m = 0 }

let grow g =
  let cap = Array.length g.succ in
  if g.n >= cap then begin
    let cap' = (2 * cap) + 1 in
    let succ' = Array.make cap' [] and pred' = Array.make cap' [] in
    Array.blit g.succ 0 succ' 0 g.n;
    Array.blit g.pred 0 pred' 0 g.n;
    g.succ <- succ';
    g.pred <- pred'
  end

let add_node g =
  grow g;
  let id = g.n in
  g.n <- g.n + 1;
  id

let add_nodes g k =
  for _ = 1 to k do
    ignore (add_node g)
  done

let node_count g = g.n
let edge_count g = g.m

let check_node g v =
  if v < 0 || v >= g.n then invalid_arg (Printf.sprintf "Digraph: node %d out of range" v)

let mem_edge g u v =
  check_node g u;
  check_node g v;
  List.mem v g.succ.(u)

let add_edge g u v =
  check_node g u;
  check_node g v;
  if u = v then invalid_arg "Digraph.add_edge: self edge";
  if not (List.mem v g.succ.(u)) then begin
    g.succ.(u) <- v :: g.succ.(u);
    g.pred.(v) <- u :: g.pred.(v);
    g.m <- g.m + 1
  end

let succs g u =
  check_node g u;
  List.rev g.succ.(u)

let preds g u =
  check_node g u;
  List.rev g.pred.(u)

let out_degree g u =
  check_node g u;
  List.length g.succ.(u)

let in_degree g u =
  check_node g u;
  List.length g.pred.(u)

let iter_nodes g f =
  for v = 0 to g.n - 1 do
    f v
  done

let iter_edges g f =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> f u v) (List.rev g.succ.(u))
  done

let transpose g =
  let t = create ~capacity:g.n () in
  add_nodes t g.n;
  iter_edges g (fun u v -> add_edge t v u);
  t

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph (%d nodes, %d edges)" g.n g.m;
  iter_edges g (fun u v -> Format.fprintf ppf "@,  %d -> %d" u v);
  Format.fprintf ppf "@]"
