(** Stoer–Wagner global minimum cut on undirected weighted graphs.

    This is the "simple min cut algorithm" the paper cites as its min-cut
    reference [29].  ReSBM's placement problems are s-t cuts on DAGs (we
    solve those with {!Maxflow}), but the global variant is provided both
    for completeness and as an independent oracle in tests. *)

type t

val create : int -> t
(** [create n] is an empty undirected graph over nodes [0 .. n-1]. *)

val add_edge : t -> int -> int -> float -> unit
(** Add weight to the undirected edge between two nodes (accumulating). *)

val min_cut : t -> float * bool array
(** The weight of a global minimum cut and one side of it.
    @raise Invalid_argument on graphs with fewer than 2 nodes. *)
