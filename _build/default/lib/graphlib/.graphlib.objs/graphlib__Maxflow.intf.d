lib/graphlib/maxflow.mli:
