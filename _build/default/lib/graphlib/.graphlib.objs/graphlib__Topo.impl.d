lib/graphlib/topo.ml: Array Digraph List Queue
