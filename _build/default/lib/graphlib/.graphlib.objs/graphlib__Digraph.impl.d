lib/graphlib/digraph.ml: Array Format List Printf
