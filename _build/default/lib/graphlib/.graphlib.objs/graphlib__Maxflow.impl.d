lib/graphlib/maxflow.ml: Array List Queue
