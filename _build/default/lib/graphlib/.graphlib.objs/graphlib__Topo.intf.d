lib/graphlib/topo.mli: Digraph
