lib/graphlib/stoer_wagner.mli:
