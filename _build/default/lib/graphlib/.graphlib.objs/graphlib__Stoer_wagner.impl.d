lib/graphlib/stoer_wagner.ml: Array List
