(** Topological ordering of directed acyclic graphs. *)

exception Cycle of int
(** Raised (carrying a witness node) when the graph has a directed cycle. *)

val sort : Digraph.t -> int list
(** Nodes in a topological order (every edge goes forward in the list).
    @raise Cycle if the graph is not acyclic. *)

val reverse_sort : Digraph.t -> int list
(** Nodes in a reverse topological order (every edge goes backward). *)

val is_dag : Digraph.t -> bool
