type t = { n : int; w : float array array }

let create n =
  if n < 0 then invalid_arg "Stoer_wagner.create";
  { n; w = Array.make_matrix n n 0.0 }

let add_edge g u v weight =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then invalid_arg "Stoer_wagner.add_edge";
  if u <> v then begin
    g.w.(u).(v) <- g.w.(u).(v) +. weight;
    g.w.(v).(u) <- g.w.(v).(u) +. weight
  end

(* Classic O(n^3) implementation with vertex merging.  [group.(v)] tracks
   the original vertices merged into representative [v] so we can report a
   side of the best cut-of-the-phase. *)
let min_cut g =
  if g.n < 2 then invalid_arg "Stoer_wagner.min_cut: need at least 2 nodes";
  let n = g.n in
  let w = Array.map Array.copy g.w in
  let group = Array.init n (fun v -> [ v ]) in
  let active = Array.make n true in
  let best = ref infinity in
  let best_side = Array.make n false in
  let remaining = ref n in
  while !remaining > 1 do
    (* One maximum-adjacency search ("minimum cut phase"). *)
    let in_a = Array.make n false in
    let weight_to_a = Array.make n 0.0 in
    let prev = ref (-1) and last = ref (-1) in
    for _ = 1 to !remaining do
      let sel = ref (-1) in
      for v = 0 to n - 1 do
        if active.(v) && not in_a.(v) then
          if !sel < 0 || weight_to_a.(v) > weight_to_a.(!sel) then sel := v
      done;
      let s = !sel in
      in_a.(s) <- true;
      prev := !last;
      last := s;
      for v = 0 to n - 1 do
        if active.(v) && not in_a.(v) then weight_to_a.(v) <- weight_to_a.(v) +. w.(s).(v)
      done
    done;
    let s = !last and t = !prev in
    let cut_of_phase = weight_to_a.(s) in
    if cut_of_phase < !best then begin
      best := cut_of_phase;
      Array.fill best_side 0 n false;
      List.iter (fun v -> best_side.(v) <- true) group.(s)
    end;
    (* Merge s into t. *)
    group.(t) <- group.(s) @ group.(t);
    active.(s) <- false;
    for v = 0 to n - 1 do
      if active.(v) && v <> t then begin
        w.(t).(v) <- w.(t).(v) +. w.(s).(v);
        w.(v).(t) <- w.(t).(v)
      end
    done;
    decr remaining
  done;
  (!best, best_side)
