(** Mutable directed graphs over dense integer node identifiers.

    Nodes are created with {!add_node} and numbered [0, 1, 2, ...] in
    creation order.  Edges are unlabelled and may not be duplicated.  The
    structure is the substrate for the FHE data-flow graphs and for the
    per-region graphs handed to the min-cut placement algorithms. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ()] is an empty graph.  [capacity] pre-sizes internal tables. *)

val add_node : t -> int
(** Allocate a fresh node and return its identifier. *)

val add_nodes : t -> int -> unit
(** [add_nodes g n] allocates [n] fresh nodes. *)

val node_count : t -> int

val edge_count : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] adds the edge [u -> v].  Duplicate edges are ignored;
    self edges raise [Invalid_argument]. *)

val mem_edge : t -> int -> int -> bool

val succs : t -> int -> int list
(** Successors of a node, in insertion order. *)

val preds : t -> int -> int list
(** Predecessors of a node, in insertion order. *)

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val iter_nodes : t -> (int -> unit) -> unit

val iter_edges : t -> (int -> int -> unit) -> unit

val transpose : t -> t
(** A fresh graph with every edge reversed. *)

val pp : Format.formatter -> t -> unit
