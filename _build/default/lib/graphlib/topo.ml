exception Cycle of int

(* Kahn's algorithm; deterministic because nodes enter the queue in
   ascending identifier order among equals. *)
let sort g =
  let n = Digraph.node_count g in
  let indeg = Array.make n 0 in
  Digraph.iter_edges g (fun _ v -> indeg.(v) <- indeg.(v) + 1);
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr seen;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      (Digraph.succs g u)
  done;
  if !seen <> n then begin
    let witness = ref (-1) in
    for v = n - 1 downto 0 do
      if indeg.(v) > 0 then witness := v
    done;
    raise (Cycle !witness)
  end;
  List.rev !order

let reverse_sort g = List.rev (sort g)

let is_dag g =
  match sort g with _ -> true | exception Cycle _ -> false
