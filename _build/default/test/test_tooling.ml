(* Tooling: Graphviz export, pretty printers, ablation knobs. *)
open Test_util
open Fhe_ir

let prm = Ckks.Params.default

(* --- Dot export ------------------------------------------------------------ *)

let contains s sub =
  let ls = String.length sub and ln = String.length s in
  let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let dot_structure () =
  let g = fig3_poly () in
  let dot = Dot.to_string ~name:"poly" g in
  checkb "digraph header" true (contains dot "digraph poly");
  checkb "input node present" true (contains dot "input:x");
  checkb "edges present" true (contains dot "->");
  checkb "output marked" true (contains dot "output 0");
  (* every live node appears *)
  List.iter
    (fun n -> checkb "node present" true (contains dot (Printf.sprintf "n%d " n.Dfg.id)))
    (Dfg.live_nodes g)

let dot_clusters () =
  let g = fig3_poly () in
  let r = Resbm.Region.build g in
  let dot =
    Dot.to_string ~cluster:(fun id -> Some r.Resbm.Region.region_of.(id)) g
  in
  checkb "region clusters emitted" true (contains dot "subgraph cluster_0");
  checkb "last region cluster" true
    (contains dot (Printf.sprintf "subgraph cluster_%d" (r.Resbm.Region.count - 1)))

let dot_annotations () =
  let g = fig3_poly () in
  let dot = Dot.to_string ~annotate:(fun id -> if id = 0 then Some "L16" else None) g in
  checkb "annotation emitted" true (contains dot "L16")

let dot_managed_has_management_nodes () =
  let g = fig1_block () in
  let managed, _ = Resbm.Driver.compile Ckks.Params.fig1 g in
  let dot = Dot.to_string managed in
  checkb "rescales rendered" true (contains dot "rescale");
  checkb "bootstraps rendered" true (contains dot "bootstrap")

let dot_write_file () =
  let g = fig3_poly () in
  let path = Filename.temp_file "resbm" ".dot" in
  Dot.write_file ~path g;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  checkb "file written" true (len > 100)

(* --- Pretty printers ---------------------------------------------------------- *)

let printer_smoke () =
  let s = Format.asprintf "%a" Ckks.Params.pp Ckks.Params.default in
  checkb "params pp" true (contains s "l_max=16");
  let g = fig3_poly () in
  let s = Format.asprintf "%a" Dfg.pp g in
  checkb "dfg pp" true (contains s "outputs");
  let r = Resbm.Region.build g in
  let s = Format.asprintf "%a" Resbm.Region.pp r in
  checkb "region pp" true (contains s "R0");
  let managed, report = Resbm.Driver.compile prm g in
  ignore managed;
  let s = Format.asprintf "%a" Resbm.Report.pp report in
  checkb "report pp" true (contains s "compiled in")

let op_names_unique () =
  let kinds =
    [
      Op.Add_cc;
      Op.Add_cp;
      Op.Mul_cc;
      Op.Mul_cp;
      Op.Rotate 3;
      Op.Relin;
      Op.Rescale;
      Op.Modswitch;
      Op.Bootstrap 5;
      Op.Input { name = "x"; level = None; scale_bits = None };
      Op.Const { name = "c" };
    ]
  in
  let names = List.map Op.name kinds in
  checki "names unique" (List.length names) (List.length (List.sort_uniq compare names))

(* --- Ablation knobs -------------------------------------------------------------- *)

let no_sinking_keeps_invariants () =
  let g = fig3_poly () in
  let r = Resbm.Region.build ~sink:false g in
  (* without the backward pass, a1x stays at its forward region (1) *)
  let a1x =
    List.find
      (fun n ->
        n.Dfg.kind = Op.Mul_cp
        && Array.exists (fun a -> (Dfg.node g a).Dfg.kind = Op.Const { name = "a1" }) n.Dfg.args)
      (Dfg.live_nodes g)
  in
  checki "a1x stays early without sinking" 1 r.Resbm.Region.region_of.(a1x.Dfg.id);
  (* data flow still respected *)
  List.iter
    (fun n ->
      Array.iter
        (fun a ->
          checkb "forward edges" true
            (r.Resbm.Region.region_of.(a) <= r.Resbm.Region.region_of.(n.Dfg.id)))
        n.Dfg.args)
    (Dfg.live_nodes g)

let no_sinking_still_compiles =
  qcheck ~count:15 "plans without sinking are still legal"
    (random_dfg_gen ~max_nodes:40 ~max_depth:10)
    (fun params ->
      let g = build_random_dfg params in
      let regioned = Resbm.Region.build ~sink:false g in
      match Resbm.Btsmgr.plan regioned prm with
      | plan ->
          let outcome = Resbm.Plan.apply regioned prm plan in
          Result.is_ok (Scale_check.run prm outcome.Resbm.Plan.dfg)
      | exception Resbm.Btsmgr.No_plan _ -> true)

let no_transit_pricing_still_compiles =
  qcheck ~count:15 "plans without transit pricing are still legal (repairs fire)"
    (random_dfg_gen ~max_nodes:40 ~max_depth:10)
    (fun params ->
      let g = build_random_dfg params in
      let regioned = Resbm.Region.build g in
      let config = { Resbm.Btsmgr.resbm_config with price_transits = false } in
      match Resbm.Btsmgr.plan ~config regioned prm with
      | plan ->
          let outcome = Resbm.Plan.apply regioned prm plan in
          Result.is_ok (Scale_check.run prm outcome.Resbm.Plan.dfg)
      | exception Resbm.Btsmgr.No_plan _ -> true)

let transit_pricing_never_hurts () =
  (* on the residual-heavy model the priced DP must be at least as good *)
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let g = lowered.Nn.Lowering.dfg in
  let p = { prm with input_level = 8 } in
  let latency_with price_transits =
    let regioned = Resbm.Region.build g in
    let config = { Resbm.Btsmgr.resbm_config with price_transits } in
    let plan = Resbm.Btsmgr.plan ~config regioned p in
    let outcome = Resbm.Plan.apply regioned p plan in
    Latency.total p outcome.Resbm.Plan.dfg
  in
  checkb "priced <= unpriced" true (latency_with true <= latency_with false +. 1e-6)

let suite =
  [
    case "dot: structure" dot_structure;
    case "dot: region clusters" dot_clusters;
    case "dot: annotations" dot_annotations;
    case "dot: management nodes rendered" dot_managed_has_management_nodes;
    case "dot: write_file" dot_write_file;
    case "printers: smoke" printer_smoke;
    case "op names unique" op_names_unique;
    case "ablation: no sinking keeps invariants" no_sinking_keeps_invariants;
    no_sinking_still_compiles;
    no_transit_pricing_still_compiles;
    case "ablation: transit pricing never hurts" transit_pricing_never_hurts;
  ]
