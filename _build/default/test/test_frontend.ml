(* The expression DSL, the static noise analyser, and the C emitter. *)
open Test_util
open Fhe_ir

let prm = Ckks.Params.default

let contains s sub =
  let ls = String.length sub and ln = String.length s in
  let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
  go 0

(* --- Lang ------------------------------------------------------------------- *)

let lang_dispatch () =
  let open Fhe_lang.Lang in
  let x = input "x" in
  let g = compile ~outputs:[ add x (sym "w") ] in
  let kinds = List.map (fun n -> n.Dfg.kind) (Dfg.live_nodes g) in
  checkb "ct+pt is add_cp" true (List.mem Op.Add_cp kinds);
  let g = compile ~outputs:[ add x x ] in
  let kinds = List.map (fun n -> n.Dfg.kind) (Dfg.live_nodes g) in
  checkb "ct+ct is add_cc" true (List.mem Op.Add_cc kinds);
  let g = compile ~outputs:[ mul x (lit 0.5) ] in
  let kinds = List.map (fun n -> n.Dfg.kind) (Dfg.live_nodes g) in
  checkb "ct*lit is mul_cp" true (List.mem Op.Mul_cp kinds)

let lang_literal_folding () =
  let open Fhe_lang.Lang in
  let e = mul (lit 2.0) (lit 3.0) in
  let g = compile ~outputs:[ mul (input "x") e ] in
  (* folded to one constant: exactly one Const node *)
  let consts =
    List.filter (fun n -> match n.Dfg.kind with Op.Const _ -> true | _ -> false)
      (Dfg.live_nodes g)
  in
  checki "one folded literal" 1 (List.length consts)

let lang_hash_consing () =
  let open Fhe_lang.Lang in
  let x = input "x" in
  (* x^2 appears twice structurally; must lower once *)
  let a = mul (square x) (sym "a") in
  let b = mul (square x) (sym "b") in
  let g = compile ~outputs:[ add a b ] in
  let mul_ccs =
    List.filter (fun n -> n.Dfg.kind = Op.Mul_cc) (Dfg.live_nodes g)
  in
  checki "x^2 shared" 1 (List.length mul_ccs)

let lang_commutative_sharing () =
  let open Fhe_lang.Lang in
  let x = input "x" and y = input "y" in
  let g = compile ~outputs:[ add (add x y) (add y x) ] in
  let adds = List.filter (fun n -> n.Dfg.kind = Op.Add_cc) (Dfg.live_nodes g) in
  (* x+y and y+x share; plus the outer add = 2 *)
  checki "commutative sharing" 2 (List.length adds)

let lang_rotate_zero_is_identity () =
  let open Fhe_lang.Lang in
  let x = input "x" in
  let g = compile ~outputs:[ rotate x 0 ] in
  checkb "no rotate node" true
    (List.for_all
       (fun n -> match n.Dfg.kind with Op.Rotate _ -> false | _ -> true)
       (Dfg.live_nodes g))

let lang_pt_pt_rejected () =
  let open Fhe_lang.Lang in
  checkb "sym+sym rejected" true
    (match add (sym "a") (sym "b") with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "plaintext output rejected" true
    (match compile ~outputs:[ lit 1.0 ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let lang_end_to_end () =
  let open Fhe_lang.Lang in
  let open Fhe_lang.Lang.Infix in
  let x = input "x" in
  let e = (square x *! 0.5) + (x *! 0.25) +! 0.125 in
  let g = compile ~outputs:[ e ] in
  checkb "valid" true (Dfg.validate g = Ok ());
  let managed, _ = Resbm.Driver.compile prm g in
  let dim = 4 in
  let values = [| 0.5; -0.5; 0.25; 0.0 |] in
  let consts = resolver (fun _ -> Array.make dim 0.0) ~dim in
  let out =
    match Nn.Plain_eval.run managed ~input:(fun _ -> values) ~consts with
    | [ o ] -> o
    | _ -> Alcotest.fail "one output"
  in
  Array.iteri
    (fun i v ->
      let x = values.(i) in
      check_float ~eps:1e-12 "quadratic" ((0.5 *. x *. x) +. (0.25 *. x) +. 0.125) v)
    out

let lang_dot_matches_manual =
  qcheck ~count:30 "dot equals an explicit rotate-mul-accumulate"
    QCheck2.Gen.(int_range 1 6)
    (fun taps ->
      let open Fhe_lang.Lang in
      let x = input "x" in
      let g = compile ~outputs:[ dot x "k" ~taps ~stride:2 ] in
      let dim = 16 in
      let base name =
        let rng = Ckks.Prng.create (Int64.of_int (Hashtbl.hash name)) in
        Array.init dim (fun _ -> Ckks.Prng.uniform rng ~lo:(-0.5) ~hi:0.5)
      in
      let consts = resolver base ~dim in
      let values = input_env ~dim 41L in
      let out =
        match Nn.Plain_eval.run g ~input:(fun _ -> values) ~consts with
        | [ o ] -> o
        | _ -> [||]
      in
      (* manual reference *)
      let expect =
        Array.init dim (fun i ->
            let acc = ref 0.0 in
            for t = 0 to taps - 1 do
              let w = (base (Printf.sprintf "k_w%d" t)).(i) in
              acc := !acc +. (values.((i + (t * 2)) mod dim) *. w)
            done;
            !acc)
      in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) out expect)

let lang_poly_odd () =
  let open Fhe_lang.Lang in
  let x = input "x" in
  let g = compile ~outputs:[ poly_odd x [| 1.5; -0.5; 0.25 |] ] in
  let dim = 4 in
  let values = [| 0.3; -0.7; 0.1; 0.9 |] in
  let consts = resolver (fun _ -> Array.make dim 0.0) ~dim in
  (match Nn.Plain_eval.run g ~input:(fun _ -> values) ~consts with
  | [ out ] ->
      Array.iteri
        (fun i v ->
          let x = values.(i) in
          let expect = (1.5 *. x) -. (0.5 *. (x ** 3.0)) +. (0.25 *. (x ** 5.0)) in
          checkb "odd poly" true (Float.abs (v -. expect) < 1e-12))
        out
  | _ -> Alcotest.fail "one output");
  checki "depth-efficient power basis" 4 (Depth.max_depth g)

(* --- Noise_check ----------------------------------------------------------------- *)

let noise_grows_with_depth () =
  let shallow = fig3_poly () in
  let managed, _ = Resbm.Driver.compile prm shallow in
  let r = Noise_check.analyse prm managed in
  checkb "finite precision" true (Float.is_finite r.Noise_check.output_precision_bits);
  checkb "high precision at depth 3" true (r.Noise_check.output_precision_bits > 20.0)

let noise_bootstrap_floor () =
  (* once a bootstrap is involved, precision is capped near its 22 bits *)
  let g = Dfg.create () in
  let x = Dfg.input g ~level:1 "x" in
  let b = Dfg.bootstrap g ~target_level:5 x in
  Dfg.set_outputs g [ b ];
  let r = Noise_check.analyse prm g in
  checkb "bootstrap caps precision" true (r.Noise_check.output_precision_bits < 23.0);
  checkb "but stays near it" true (r.Noise_check.output_precision_bits > 20.0)

let noise_prediction_holds_end_to_end =
  qcheck ~count:10 "static prediction covers the measured error"
    (random_dfg_gen ~max_nodes:25 ~max_depth:5)
    (fun params ->
      let g = build_random_dfg params in
      match Resbm.Driver.compile prm g with
      | managed, _ ->
          let report = Noise_check.analyse prm managed in
          let dim = 4 in
          let input = Array.map (fun v -> 0.5 *. v) (input_env ~dim 43L) in
          let consts name = Array.map (fun v -> 0.5 *. v) (const_env ~dim name) in
          let ev = Ckks.Evaluator.create prm in
          let result = Interp.run ev managed { Interp.inputs = [ ("x", input) ]; consts } in
          let plain = Nn.Plain_eval.run managed ~input:(fun _ -> input) ~consts in
          let measured =
            List.fold_left2
              (fun acc ct expect ->
                let d = Ckks.Evaluator.decrypt ev ct in
                Array.fold_left Float.max acc
                  (Array.mapi (fun i v -> Float.abs (v -. expect.(i))) d))
              0.0 result.Interp.outputs plain
          in
          Noise_check.predicts report ~measured
      | exception Resbm.Btsmgr.No_plan _ -> true)

let noise_magnitude_tracking () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let s = Dfg.add_cc g x x in
  Dfg.set_outputs g [ s ];
  let r = Noise_check.analyse ~input_magnitude:0.5 prm g in
  check_float ~eps:1e-12 "magnitudes add" 1.0 r.Noise_check.per_node.(s).Noise_check.magnitude

(* --- Emit ------------------------------------------------------------------------- *)

let emit_structure () =
  let g = fig1_block () in
  let p = Ckks.Params.fig1 in
  let managed, _ = Resbm.Driver.compile p g in
  let code = Emit.to_string ~program_name:"resnet_block" p managed in
  checkb "header" true (contains code "typedef struct ciphertext *CIPHER");
  checkb "program name" true (contains code "void resnet_block(void)");
  checkb "encrypt call" true (contains code "Encrypt_input(\"x\"");
  checkb "rescale emitted" true (contains code "Rescale_ciph");
  checkb "bootstrap emitted" true (contains code "Bootstrap_ciph");
  checkb "output emitted" true (contains code "Output_ciph");
  checkb "liveness frees" true (contains code "Free_ciph");
  (* one ciphertext variable per ct node *)
  let ct_nodes =
    List.length
      (List.filter (fun n -> Op.produces_ct n.Dfg.kind) (Dfg.live_nodes managed))
  in
  checki "one variable per ciphertext node" ct_nodes (Emit.declared_variables code)

let emit_rejects_illegal () =
  let g = fig1_block () in
  checkb "unmanaged graph rejected" true
    (match Emit.to_string Ckks.Params.fig1 g with
    | _ -> false
    | exception Invalid_argument _ -> true)

let emit_rolled_loops_annotated () =
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let managed, _ = Resbm.Driver.compile prm lowered.Nn.Lowering.dfg in
  let code = Emit.to_string prm managed in
  checkb "loop annotation" true (contains code "rolled loop: 4 iterations")

let emit_compiles_under_gcc () =
  let g = fig3_poly () in
  let managed, _ = Resbm.Driver.compile prm g in
  let path = Filename.temp_file "resbm" ".c" in
  Emit.write_file prm ~path managed;
  let rc = Sys.command (Printf.sprintf "gcc -fsyntax-only -Wall -Werror %s 2>/dev/null" path) in
  Sys.remove path;
  if rc = 127 then () (* no gcc in this environment: skip *)
  else checki "gcc -fsyntax-only accepts the artefact" 0 rc

let suite =
  [
    case "lang: ct/pt dispatch" lang_dispatch;
    case "lang: literal folding" lang_literal_folding;
    case "lang: hash consing" lang_hash_consing;
    case "lang: commutative sharing" lang_commutative_sharing;
    case "lang: rotate 0 elided" lang_rotate_zero_is_identity;
    case "lang: plaintext-only forms rejected" lang_pt_pt_rejected;
    case "lang: end to end quadratic" lang_end_to_end;
    lang_dot_matches_manual;
    case "lang: odd polynomial basis" lang_poly_odd;
    case "noise: grows with depth" noise_grows_with_depth;
    case "noise: bootstrap precision floor" noise_bootstrap_floor;
    noise_prediction_holds_end_to_end;
    case "noise: magnitude tracking" noise_magnitude_tracking;
    case "emit: structure" emit_structure;
    case "emit: rejects illegal graphs" emit_rejects_illegal;
    case "emit: rolled loop annotations" emit_rolled_loops_annotated;
    case "emit: gcc syntax check" emit_compiles_under_gcc;
  ]

(* --- Liveness --------------------------------------------------------------- *)

let liveness_chain () =
  (* a pure chain keeps at most two ciphertexts alive *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let a = Dfg.rotate g x 1 in
  let b = Dfg.rotate g a 1 in
  let c = Dfg.rotate g b 1 in
  Dfg.set_outputs g [ c ];
  let r = Liveness.analyse prm g in
  checki "all allocated" 4 r.Liveness.total_ciphertexts;
  checki "peak of a chain" 2 r.Liveness.peak_live;
  checki "one output live" 1 r.Liveness.final_live

let liveness_fanout () =
  (* a value with many pending consumers stays live across them *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let rots = List.init 5 (fun i -> Dfg.rotate g x (i + 1)) in
  let sum =
    match rots with
    | first :: rest -> List.fold_left (fun acc r -> Dfg.add_cc g acc r) first rest
    | [] -> assert false
  in
  Dfg.set_outputs g [ sum ];
  let r = Liveness.analyse prm g in
  checkb "fanout raises the peak" true (r.Liveness.peak_live >= 5)

let liveness_bytes_grow_with_level () =
  let high = Liveness.ciphertext_bytes prm ~level:16
  and low = Liveness.ciphertext_bytes prm ~level:2 in
  checkb "higher level, bigger ciphertext" true (high > low);
  (* 2 * (level+1) * N * 8 bytes *)
  check_float ~eps:1.0 "formula" (2.0 *. 17.0 *. 65536.0 *. 8.0) high

let liveness_resnet_scale () =
  let lowered = Nn.Lowering.lower Nn.Model.resnet20 in
  let managed, _ = Resbm.Variants.(compile resbm) prm lowered.Nn.Lowering.dfg in
  let r = Liveness.analyse prm managed in
  checkb "bounded working set" true (r.Liveness.peak_live < 64);
  checkb "hundreds of values total" true (r.Liveness.total_ciphertexts > 500)

let noise_sharp_prediction_with_oracle () =
  (* with the lowering's constant magnitudes, the prediction lands within
     a few bits of the measured end-to-end error *)
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let managed, _ = Resbm.Variants.(compile resbm) prm lowered.Nn.Lowering.dfg in
  let dim = 16 in
  let const_magnitude name =
    Array.fold_left
      (fun acc v -> Float.max acc (Float.abs v))
      0.0
      (Nn.Lowering.resolver lowered ~dim name)
  in
  let report = Noise_check.analyse ~const_magnitude ~magnitude_cap:0.5 prm managed in
  let image = (Nn.Dataset.images ~dim ~count:1 ()).(0) in
  let ev = Ckks.Evaluator.create prm in
  let enc, _ = Nn.Inference.run_encrypted ev lowered ~managed image in
  let plain = Nn.Inference.run_plain lowered ~dim image in
  let measured =
    Array.fold_left Float.max 0.0 (Array.mapi (fun i v -> Float.abs (v -. plain.(i))) enc)
  in
  checkb "measured within the predicted envelope" true
    (Noise_check.predicts report ~measured);
  checkb "prediction is not wildly loose" true
    (report.Noise_check.output_noise < measured *. 1e5)

let liveness_suite =
  [
    case "liveness: chain" liveness_chain;
    case "liveness: fanout" liveness_fanout;
    case "liveness: ciphertext size formula" liveness_bytes_grow_with_level;
    case "liveness: resnet working set" liveness_resnet_scale;
    case "noise: sharp prediction with magnitude oracle" noise_sharp_prediction_with_oracle;
  ]

let suite = suite @ liveness_suite
