open Test_util
open Fhe_ir

let prm = Ckks.Params.default

(* --- Polynomial approximation -------------------------------------------- *)

let poly_sign_accuracy () =
  (* the composed minimax sign is accurate away from zero *)
  List.iter
    (fun x ->
      let s = Nn.Poly_approx.sign ~stages:3 x in
      let expect = if x > 0.0 then 1.0 else -1.0 in
      checkb (Printf.sprintf "sign(%.2f)" x) true (Float.abs (s -. expect) < 0.05))
    [ -0.9; -0.5; -0.2; 0.2; 0.5; 0.9 ]

let poly_relu_accuracy () =
  List.iter
    (fun x ->
      let r = Nn.Poly_approx.relu ~stages:3 x in
      let expect = Float.max x 0.0 in
      checkb (Printf.sprintf "relu(%.2f)" x) true (Float.abs (r -. expect) < 0.05))
    [ -0.8; -0.3; 0.3; 0.8 ]

let poly_odd_symmetry =
  qcheck ~count:100 "sign is odd" QCheck2.Gen.(float_range 0.01 1.0) (fun x ->
      let s = Nn.Poly_approx.sign ~stages:2 x in
      Float.abs (s +. Nn.Poly_approx.sign ~stages:2 (-.x)) < 1e-9)

let poly_depth_formula () =
  checki "2 stages" 10 (Nn.Poly_approx.depth ~stages:2);
  checki "3 stages" 14 (Nn.Poly_approx.depth ~stages:3)

let poly_f7_fixed_point () =
  (* f(1) = 1 for the degree-7 minimax stage *)
  let f = Nn.Poly_approx.f7 in
  check_float ~eps:1e-9 "f(1) = 1" 1.0 (f.(0) +. f.(1) +. f.(2) +. f.(3))

(* --- Models ----------------------------------------------------------------- *)

let model_depths () =
  checkb "resnet20 deep" true (Nn.Model.depth Nn.Model.resnet20 > 150);
  checkb "resnet44 deeper" true
    (Nn.Model.depth Nn.Model.resnet44 > Nn.Model.depth Nn.Model.resnet20);
  checkb "resnet110 deepest" true
    (Nn.Model.depth Nn.Model.resnet110 > Nn.Model.depth Nn.Model.resnet44);
  checki "tiny" 12 (Nn.Model.depth Nn.Model.tiny)

let model_lookup () =
  checkb "resnet20" true (Nn.Model.by_name "resnet20" <> None);
  checkb "VGG16 case-insensitive" true (Nn.Model.by_name "vgg16" <> None);
  checkb "unknown" true (Nn.Model.by_name "transformer" = None);
  checki "seven paper models" 7 (List.length Nn.Model.paper_models)

let resnet_family_structure () =
  (* ResNet-(6n+2): 6n+1 convolutions + stem... count conv layers *)
  let count_convs model =
    let rec go acc = function
      | [] -> acc
      | Nn.Model.Conv _ :: rest -> go (acc + 1) rest
      | Nn.Model.Residual { body; project } :: rest ->
          go (go (go acc body) project) rest
      | Nn.Model.Concat { branches; _ } :: rest ->
          go (List.fold_left go acc branches) rest
      | _ :: rest -> go acc rest
    in
    go 0 model.Nn.Model.layers
  in
  checki "resnet20 convs" 21 (count_convs Nn.Model.resnet20);
  (* 1 stem + 18 block convs + 2 projections *)
  checki "resnet44 convs" 45 (count_convs Nn.Model.resnet44)

(* --- Lowering ------------------------------------------------------------------ *)

let lowering_valid_graphs () =
  List.iter
    (fun model ->
      let lowered = Nn.Lowering.lower model in
      checkb (model.Nn.Model.name ^ " valid") true
        (Dfg.validate lowered.Nn.Lowering.dfg = Ok ());
      checki (model.Nn.Model.name ^ " one output") 1
        (List.length (Dfg.outputs lowered.Nn.Lowering.dfg)))
    (Nn.Model.paper_models @ [ Nn.Model.lenet5; Nn.Model.tiny ])

let lowering_depth_matches_spec () =
  List.iter
    (fun model ->
      let lowered = Nn.Lowering.lower model in
      checki (model.Nn.Model.name ^ " depth") (Nn.Model.depth model)
        (Depth.max_depth lowered.Nn.Lowering.dfg))
    [ Nn.Model.tiny; Nn.Model.lenet5; Nn.Model.resnet20; Nn.Model.squeezenet ]

let lowering_repack_has_freq_one () =
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let g = lowered.Nn.Lowering.dfg in
  (* the program output is a frequency-1 repack *)
  match Dfg.outputs g with
  | [ out ] -> checki "freq 1 at the boundary" 1 (Dfg.node g out).Dfg.freq
  | _ -> Alcotest.fail "one output"

let resolver_deterministic () =
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let r1 = Nn.Lowering.resolver lowered ~dim:8 "conv1_w0" in
  let r2 = Nn.Lowering.resolver lowered ~dim:8 "conv1_w0" in
  checkb "same payload" true (r1 = r2);
  let other = Nn.Lowering.resolver lowered ~dim:8 "conv1_w1" in
  checkb "different names differ" true (r1 <> other)

let resolver_special_names () =
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let r = Nn.Lowering.resolver lowered ~dim:4 in
  check_float "f7c0" Nn.Poly_approx.f7.(0) (r "f7c0").(0);
  check_float "apr_half" 0.5 (r "apr_half").(0);
  check_float "apr_bias" 0.5 (r "apr_bias").(0)

let resolver_weight_amplitude () =
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let w = Nn.Lowering.resolver lowered ~dim:64 "conv1_w1" in
  (* 3 taps: amplitude <= 0.45/3 *)
  Array.iter (fun v -> checkb "bounded" true (Float.abs v <= 0.45 /. 3.0 +. 1e-9)) w

(* --- Dataset ---------------------------------------------------------------------- *)

let dataset_deterministic () =
  let a = Nn.Dataset.images ~seed:5L ~dim:8 ~count:3 ()
  and b = Nn.Dataset.images ~seed:5L ~dim:8 ~count:3 () in
  checkb "reproducible" true (a = b);
  let c = Nn.Dataset.images ~seed:6L ~dim:8 ~count:3 () in
  checkb "seed-sensitive" true (a <> c)

let dataset_range () =
  let imgs = Nn.Dataset.images ~dim:32 ~count:10 () in
  Array.iter
    (fun img -> Array.iter (fun v -> checkb "in [-1,1]" true (v >= -1.0 && v <= 1.0)) img)
    imgs

let dataset_argmax () =
  checki "argmax" 2 (Nn.Dataset.argmax ~classes:4 [| 0.1; 0.3; 0.9; 0.2; 5.0 |]);
  checki "classes bound" 1 (Nn.Dataset.argmax ~classes:2 [| 0.1; 0.3; 0.9 |])

let dataset_labels_in_range () =
  let data =
    Nn.Dataset.labelled ~dim:8 ~count:10 ~classes:4
      ~infer:(fun img -> Array.sub img 0 4)
      ()
  in
  Array.iter
    (fun s -> checkb "label in range" true (s.Nn.Dataset.label >= 0 && s.Nn.Dataset.label < 4))
    data

(* --- Plain eval vs lowering ---------------------------------------------------------- *)

let plain_eval_conv_semantics () =
  (* a one-tap convolution is an element-wise affine map *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cp g x (Dfg.const g "w") in
  let s = Dfg.add_cp g m (Dfg.const g "b") in
  Dfg.set_outputs g [ s ];
  let dim = 4 in
  let input = [| 1.0; 2.0; 3.0; 4.0 |] in
  let consts = function
    | "w" -> Array.make dim 2.0
    | _ -> Array.make dim 0.5
  in
  match Nn.Plain_eval.run g ~input:(fun _ -> input) ~consts with
  | [ out ] ->
      Array.iteri (fun i v -> check_float "affine" ((input.(i) *. 2.0) +. 0.5) v) out
  | _ -> Alcotest.fail "one output"

let plain_eval_apr_close_to_relu () =
  let lowered = Nn.Lowering.lower { Nn.Model.name = "apr"; layers = [ Nn.Model.Apr { stages = 2 } ]; classes = 1 } in
  let dim = 8 in
  let input = [| -0.8; -0.4; -0.1; 0.0; 0.1; 0.4; 0.8; 0.5 |] in
  let consts = Nn.Lowering.resolver lowered ~dim in
  match Nn.Plain_eval.run lowered.Nn.Lowering.dfg ~input:(fun _ -> input) ~consts with
  | [ out ] ->
      Array.iteri
        (fun i v ->
          let expect = Nn.Poly_approx.relu ~stages:2 input.(i) in
          checkb "lowered APR matches reference" true (Float.abs (v -. expect) < 1e-9))
        out
  | _ -> Alcotest.fail "one output"

(* --- Inference fidelity (Table 6 machinery) ------------------------------------------- *)

let fidelity_tiny_model () =
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let managed, _ = Resbm.Variants.(compile resbm) prm lowered.Nn.Lowering.dfg in
  let fid = Nn.Inference.fidelity ~samples:6 ~dim:16 prm lowered ~managed in
  checkb "plain and encrypted agree" true (fid.Nn.Inference.agreement >= 0.99);
  checkb "tiny error" true (fid.Nn.Inference.max_abs_err < 1e-4);
  checkb "accuracy loss negligible" true (Float.abs fid.Nn.Inference.accuracy_loss < 0.01);
  checkb "latency recorded" true (fid.Nn.Inference.mean_latency_ms > 0.0)

let fidelity_with_bootstrapping () =
  (* force bootstrapping with low fresh levels: fidelity must survive *)
  let p = { prm with input_level = 8 } in
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let managed, report = Resbm.Variants.(compile resbm) p lowered.Nn.Lowering.dfg in
  checkb "bootstraps present" true (report.Resbm.Report.stats.Stats.bootstrap_count > 0);
  let fid = Nn.Inference.fidelity ~samples:4 ~dim:16 p lowered ~managed in
  checkb "agreement across bootstraps" true (fid.Nn.Inference.agreement >= 0.99)

let suite =
  [
    case "poly: sign accuracy" poly_sign_accuracy;
    case "poly: relu accuracy" poly_relu_accuracy;
    poly_odd_symmetry;
    case "poly: depth formula" poly_depth_formula;
    case "poly: f7 fixed point" poly_f7_fixed_point;
    case "models: depths" model_depths;
    case "models: lookup" model_lookup;
    case "models: resnet structure" resnet_family_structure;
    case "lowering: all models valid" lowering_valid_graphs;
    case "lowering: depth matches spec" lowering_depth_matches_spec;
    case "lowering: frequency-1 boundary" lowering_repack_has_freq_one;
    case "resolver: deterministic" resolver_deterministic;
    case "resolver: special names" resolver_special_names;
    case "resolver: weight amplitude" resolver_weight_amplitude;
    case "dataset: deterministic" dataset_deterministic;
    case "dataset: value range" dataset_range;
    case "dataset: argmax" dataset_argmax;
    case "dataset: labels in range" dataset_labels_in_range;
    case "plain eval: affine conv" plain_eval_conv_semantics;
    case "plain eval: APR matches reference" plain_eval_apr_close_to_relu;
    case "fidelity: tiny model (Table 6 machinery)" fidelity_tiny_model;
    case "fidelity: across bootstraps" fidelity_with_bootstrapping;
  ]
