(* End-to-end compilation: Plan application, Driver, Variants. *)
open Test_util
open Fhe_ir

let prm = Ckks.Params.default

let compiled_graphs_are_legal =
  qcheck ~count:40 "managed graphs pass the scale checker"
    (random_dfg_gen ~max_nodes:60 ~max_depth:14)
    (fun params ->
      let g = build_random_dfg params in
      match Resbm.Driver.compile prm g with
      | managed, _ -> Result.is_ok (Scale_check.run prm managed)
      | exception Resbm.Btsmgr.No_plan _ -> true)

let all_variants_produce_legal_graphs =
  qcheck ~count:15 "every manager produces a legal graph"
    (random_dfg_gen ~max_nodes:40 ~max_depth:10)
    (fun params ->
      let g = build_random_dfg params in
      List.for_all
        (fun mgr ->
          match Resbm.Variants.compile mgr prm g with
          | managed, _ -> Result.is_ok (Scale_check.run prm managed)
          | exception Resbm.Btsmgr.No_plan _ -> true)
        Resbm.Variants.all)

let compiled_graphs_compute_the_same_function =
  qcheck ~count:20 "management preserves program semantics"
    (random_dfg_gen ~max_nodes:30 ~max_depth:8)
    (fun params ->
      let g = build_random_dfg params in
      match Resbm.Driver.compile prm g with
      | managed, _ ->
          let dim = 4 in
          let input = input_env ~dim 17L in
          let consts = const_env ~dim in
          let plain_before = Nn.Plain_eval.run g ~input:(fun _ -> input) ~consts in
          let plain_after = Nn.Plain_eval.run managed ~input:(fun _ -> input) ~consts in
          List.for_all2
            (fun a b ->
              Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a b)
            plain_before plain_after
      | exception Resbm.Btsmgr.No_plan _ -> true)

let encrypted_execution_matches_plain =
  qcheck ~count:12 "simulated encrypted execution tracks the plain result"
    (random_dfg_gen ~max_nodes:25 ~max_depth:6)
    (fun params ->
      let g = build_random_dfg params in
      match Resbm.Driver.compile prm g with
      | managed, _ ->
          let dim = 4 in
          let input = Array.map (fun v -> 0.5 *. v) (input_env ~dim 23L) in
          let consts name = Array.map (fun v -> 0.5 *. v) (const_env ~dim name) in
          let plain = Nn.Plain_eval.run managed ~input:(fun _ -> input) ~consts in
          let ev = Ckks.Evaluator.create prm in
          let result =
            Interp.run ev managed { Interp.inputs = [ ("x", input) ]; consts }
          in
          List.for_all2
            (fun ct expected ->
              let d = Ckks.Evaluator.decrypt ev ct in
              Array.for_all2
                (fun x y ->
                  (* values can grow multiplicatively; compare relative *)
                  Float.abs (x -. y) < 1e-4 *. (1.0 +. Float.abs y))
                d expected)
            result.Interp.outputs plain
      | exception Resbm.Btsmgr.No_plan _ -> true)

let fig1_managed_runs_end_to_end () =
  let p = Ckks.Params.fig1 in
  let g = fig1_block () in
  let managed, report = Resbm.Driver.compile p g in
  checkb "legal" true (Result.is_ok (Scale_check.run p managed));
  checki "two bootstraps" 2 report.Resbm.Report.stats.Stats.bootstrap_count;
  let dim = 8 in
  let input = Array.map (fun v -> 0.5 *. v) (input_env ~dim 29L) in
  let consts name = Array.map (fun v -> 0.5 *. v) (const_env ~dim name) in
  let ev = Ckks.Evaluator.create p in
  let result = Interp.run ev managed { Interp.inputs = [ ("x", input) ]; consts } in
  let plain = Nn.Plain_eval.run managed ~input:(fun _ -> input) ~consts in
  (match (result.Interp.outputs, plain) with
  | [ ct ], [ expected ] ->
      let d = Ckks.Evaluator.decrypt ev ct in
      Array.iteri
        (fun i v ->
          checkb "simulated ~= plain" true
            (Float.abs (v -. expected.(i)) < 1e-3 *. (1.0 +. Float.abs expected.(i))))
        d
  | _ -> Alcotest.fail "single output expected")

let resbm_beats_or_ties_fhelipe_on_models () =
  List.iter
    (fun model ->
      let lowered = Nn.Lowering.lower model in
      let g = lowered.Nn.Lowering.dfg in
      let _, resbm = Resbm.Variants.(compile resbm) prm g in
      let _, fhelipe = Resbm.Variants.(compile fhelipe) prm g in
      checkb
        (Printf.sprintf "%s: ReSBM <= Fhelipe" model.Nn.Model.name)
        true
        (resbm.Resbm.Report.latency_ms <= fhelipe.Resbm.Report.latency_ms))
    [ Nn.Model.resnet20; Nn.Model.alexnet; Nn.Model.squeezenet ]

let equal_bootstrap_counts_with_fhelipe () =
  (* Table 5's precondition: ReSBM and Fhelipe insert the same number of
     bootstraps per model *)
  let lowered = Nn.Lowering.lower Nn.Model.resnet20 in
  let g = lowered.Nn.Lowering.dfg in
  let _, resbm = Resbm.Variants.(compile resbm) prm g in
  let _, fhelipe = Resbm.Variants.(compile fhelipe) prm g in
  checki "same bootstrap count" fhelipe.Resbm.Report.stats.Stats.bootstrap_count
    resbm.Resbm.Report.stats.Stats.bootstrap_count

let resbm_uses_lower_bootstrap_levels () =
  let lowered = Nn.Lowering.lower Nn.Model.resnet20 in
  let g = lowered.Nn.Lowering.dfg in
  let _, resbm = Resbm.Variants.(compile resbm) prm g in
  let _, fhelipe = Resbm.Variants.(compile fhelipe) prm g in
  let below_max levels =
    List.fold_left
      (fun acc (l, c) -> if l < prm.Ckks.Params.l_max then acc + c else acc)
      0 levels
  in
  checkb "ReSBM bootstraps below l_max" true
    (below_max resbm.Resbm.Report.stats.Stats.bootstrap_levels > 0);
  checki "Fhelipe always at l_max" 0
    (below_max fhelipe.Resbm.Report.stats.Stats.bootstrap_levels)

let fhelipe_executes_more_rescales () =
  let lowered = Nn.Lowering.lower Nn.Model.resnet20 in
  let g = lowered.Nn.Lowering.dfg in
  let _, resbm = Resbm.Variants.(compile resbm) prm g in
  let _, fhelipe = Resbm.Variants.(compile fhelipe) prm g in
  checkb "Table 4 shape" true
    (fhelipe.Resbm.Report.stats.Stats.executed_rescales
    > 5 * resbm.Resbm.Report.stats.Stats.executed_rescales)

let l_max_sweep_increases_bootstraps () =
  (* Figure 7 shape: lowering l_max inserts more bootstraps and raises
     latency *)
  let lowered = Nn.Lowering.lower Nn.Model.resnet20 in
  let g = lowered.Nn.Lowering.dfg in
  let run l_max =
    let p = Ckks.Params.with_l_max { prm with input_level = l_max } l_max in
    let _, r = Resbm.Variants.(compile resbm) p g in
    (r.Resbm.Report.stats.Stats.bootstrap_count, r.Resbm.Report.latency_ms)
  in
  let b16, l16 = run 16 and b10, l10 = run 10 in
  checkb "more bootstraps at l_max 10" true (b10 > b16);
  checkb "higher latency at l_max 10" true (l10 > l16)

let report_consistency () =
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let g = lowered.Nn.Lowering.dfg in
  let managed, report = Resbm.Variants.(compile resbm) prm g in
  check_float ~eps:1e-6 "report latency matches graph"
    (Latency.total prm managed) report.Resbm.Report.latency_ms;
  checkb "compile time measured" true (report.Resbm.Report.compile_ms > 0.0);
  checki "stats node count" (List.length (Dfg.live_nodes managed)) report.Resbm.Report.stats.Stats.nodes

let variants_lookup () =
  checkb "by_name resbm" true (Resbm.Variants.by_name "resbm" <> None);
  checkb "by_name Fhelipe" true (Resbm.Variants.by_name "FHELIPE" <> None);
  checkb "by_name unknown" true (Resbm.Variants.by_name "nope" = None);
  checki "figure6 has five managers" 5 (List.length Resbm.Variants.figure6)

let suite =
  [
    compiled_graphs_are_legal;
    all_variants_produce_legal_graphs;
    compiled_graphs_compute_the_same_function;
    encrypted_execution_matches_plain;
    case "Figure 1 block end to end" fig1_managed_runs_end_to_end;
    case "ReSBM beats Fhelipe on models" resbm_beats_or_ties_fhelipe_on_models;
    case "equal bootstrap counts (Table 5 precondition)" equal_bootstrap_counts_with_fhelipe;
    case "minimal vs max bootstrap levels (Table 5)" resbm_uses_lower_bootstrap_levels;
    case "rescale-count gap (Table 4 shape)" fhelipe_executes_more_rescales;
    case "l_max sweep (Figure 7 shape)" l_max_sweep_increases_bootstraps;
    case "report consistency" report_consistency;
    case "variants lookup" variants_lookup;
  ]
