(* Breadth coverage: full Table 2 pinning, plan-structure invariants,
   small-parameter exact CKKS, evaluator edge cases. *)
open Test_util
open Fhe_ir

let prm = Ckks.Params.default

(* --- Table 2 fully pinned ----------------------------------------------------- *)

let table2_rows =
  (* every published cell, from the paper *)
  [
    (Ckks.Cost_model.Add_cp, [ 0.138; 0.575; 0.886; 1.268; 1.714; 1.931; 2.295; 2.807; 3.066 ]);
    (Ckks.Cost_model.Add_cc, [ 0.164; 0.548; 0.936; 1.344; 1.690; 2.089; 2.561; 3.089; 3.574 ]);
    (Ckks.Cost_model.Mul_cp, [ nan; 1.175; 1.993; 2.746; 3.553; 4.354; 5.175; 5.902; 6.837 ]);
    (Ckks.Cost_model.Mul_cc, [ nan; 2.509; 4.237; 6.021; 7.750; 9.280; 11.129; 13.053; 15.638 ]);
    ( Ckks.Cost_model.Rotate,
      [ 58.422; 77.521; 93.799; 111.901; 130.940; 150.321; 241.560; 243.323; 290.575 ] );
    ( Ckks.Cost_model.Relin,
      [ nan; 76.947; 93.617; 111.819; 130.493; 149.586; 215.768; 242.031; 262.308 ] );
    ( Ckks.Cost_model.Rescale,
      [ nan; 9.085; 15.107; 21.333; 27.535; 33.792; 40.068; 46.372; 52.744 ] );
    ( Ckks.Cost_model.Bootstrap,
      [ nan; 21005.0; 23738.0; 26229.0; 30413.0; 34556.0; 37844.0; 41582.0; 44719.0 ] );
  ]

let table2_all_cells () =
  List.iter
    (fun (op, cells) ->
      List.iteri
        (fun i expected ->
          if not (Float.is_nan expected) then
            check_float
              (Printf.sprintf "%s at l=%d" (Ckks.Cost_model.op_name op) (2 * i))
              expected
              (Ckks.Cost_model.cost op ~level:(2 * i)))
        cells)
    table2_rows

(* --- Plan-structure invariants -------------------------------------------------- *)

let plan_actions_match_inserted_rescales =
  qcheck ~count:20 "inserted rescale count follows the per-region plan"
    (random_dfg_gen ~max_nodes:40 ~max_depth:8)
    (fun params ->
      let g = build_random_dfg params in
      let regioned = Resbm.Region.build g in
      match Resbm.Btsmgr.plan regioned prm with
      | plan ->
          let outcome = Resbm.Plan.apply regioned prm plan in
          let inserted =
            List.length
              (List.filter
                 (fun n -> n.Dfg.kind = Op.Rescale)
                 (Dfg.live_nodes outcome.Resbm.Plan.dfg))
          in
          (* each rescaling region contributes at least (rescales) nodes
             (one chain per cut tail), and regions without rescales none *)
          let min_expected =
            Array.fold_left
              (fun acc (a : Resbm.Btsmgr.region_action) -> acc + a.Resbm.Btsmgr.rescales)
              0
              (Array.sub plan.Resbm.Btsmgr.actions 0
                 (Array.length plan.Resbm.Btsmgr.actions - 1))
          in
          inserted >= min 1 min_expected || min_expected = 0
      | exception Resbm.Btsmgr.No_plan _ -> true)

let bootstraps_only_in_bts_regions =
  qcheck ~count:20 "plan bootstraps appear only where the DP placed them"
    (random_dfg_gen ~max_nodes:40 ~max_depth:10)
    (fun params ->
      let g = build_random_dfg params in
      let regioned = Resbm.Region.build g in
      match Resbm.Btsmgr.plan regioned prm with
      | plan ->
          let outcome = Resbm.Plan.apply regioned prm plan in
          let has_bts_region =
            Array.exists (fun a -> a.Resbm.Btsmgr.bts <> None) plan.Resbm.Btsmgr.actions
          in
          let has_bts_nodes =
            List.exists
              (fun n -> match n.Dfg.kind with Op.Bootstrap _ -> true | _ -> false)
              (Dfg.live_nodes outcome.Resbm.Plan.dfg)
          in
          (* no plan bootstraps and no repairs => no bootstrap nodes *)
          (not has_bts_nodes)
          || has_bts_region
          || outcome.Resbm.Plan.repair_bootstraps > 0
      | exception Resbm.Btsmgr.No_plan _ -> true)

let managed_levels_never_negative =
  qcheck ~count:20 "no managed ciphertext dips below level 0"
    (random_dfg_gen ~max_nodes:40 ~max_depth:10)
    (fun params ->
      let g = build_random_dfg params in
      match Resbm.Driver.compile prm g with
      | managed, _ -> (
          match Scale_check.run prm managed with
          | Ok info ->
              Array.for_all
                (fun i -> (not i.Scale_check.is_ct) || i.Scale_check.level >= 0)
                info
          | Error _ -> false)
      | exception Resbm.Btsmgr.No_plan _ -> true)

let idempotent_statistics =
  qcheck ~count:20 "collecting statistics does not mutate the graph"
    (random_dfg_gen ~max_nodes:30 ~max_depth:5)
    (fun params ->
      let g = build_random_dfg params in
      let s1 = Stats.collect g in
      let s2 = Stats.collect g in
      s1 = s2 && Dfg.validate g = Ok ())

(* --- Exact CKKS at other parameter points ----------------------------------------- *)

let toy_ckks_other_ring_sizes () =
  List.iter
    (fun n ->
      let prm_toy =
        { Ckks.Toy_ckks.default_params with n; scale = 262144.0 (* 2^18 *) }
      in
      let c = Ckks.Toy_ckks.create prm_toy in
      let sk, pk = Ckks.Toy_ckks.keygen c in
      let slots = n / 2 in
      let rng = Ckks.Prng.create 31L in
      let v = Array.init slots (fun _ -> Ckks.Prng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      let ct = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c v) in
      let out = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk ct) in
      let err =
        Array.fold_left Float.max 0.0 (Array.mapi (fun i x -> Float.abs (x -. out.(i))) v)
      in
      checkb (Printf.sprintf "n = %d roundtrip" n) true (err < 2e-2))
    [ 16; 32; 128 ]

let toy_ckks_deeper_chain () =
  (* three moduli allow two rescaled multiplications in sequence *)
  let c = Ckks.Toy_ckks.create Ckks.Toy_ckks.default_params in
  let sk, pk = Ckks.Toy_ckks.keygen c in
  let slots = 32 in
  let rng = Ckks.Prng.create 37L in
  let v = Array.init slots (fun _ -> Ckks.Prng.uniform rng ~lo:(-0.9) ~hi:0.9) in
  let ct = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c v) in
  let sq = Ckks.Toy_ckks.rescale (Ckks.Toy_ckks.mul ct ct) in
  checki "level 1 after one rescale" 1 (Ckks.Toy_ckks.level sq);
  let out = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk sq) in
  let expect = Array.map (fun x -> x *. x) v in
  let err =
    Array.fold_left Float.max 0.0
      (Array.mapi (fun i x -> Float.abs (x -. out.(i))) expect)
  in
  checkb "x^2 via exact arithmetic" true (err < 5e-2)

(* --- Evaluator edge cases ------------------------------------------------------------ *)

let evaluator_slot_mismatch () =
  let ev = Ckks.Evaluator.create prm in
  let a = Ckks.Evaluator.encrypt ev [| 1.0; 2.0 |] in
  let b = Ckks.Evaluator.encrypt ev [| 1.0 |] in
  checkb "slot mismatch raises" true
    (match Ckks.Evaluator.add_cc ev a b with
    | _ -> false
    | exception Ckks.Evaluator.Fhe_error _ -> true)

let evaluator_rotate_wraps () =
  let ev = Ckks.Evaluator.create prm in
  let a = Ckks.Evaluator.encrypt ev [| 1.0; 2.0; 3.0 |] in
  let r = Ckks.Evaluator.rotate ev a 7 in
  (* 7 mod 3 = 1 *)
  let d = Ckks.Evaluator.decrypt ev r in
  checkb "wraps modulo slots" true (Float.abs (d.(0) -. 2.0) < 1e-4)

let evaluator_deterministic_with_seed () =
  let run () =
    let ev = Ckks.Evaluator.create ~seed:123L prm in
    let a = Ckks.Evaluator.encrypt ev [| 0.5 |] in
    let m = Ckks.Evaluator.relin ev (Ckks.Evaluator.mul_cc ev a a) in
    (Ckks.Evaluator.decrypt ev m).(0)
  in
  check_float "bit-reproducible" (run ()) (run ())

(* --- Model structure spot checks ---------------------------------------------------- *)

let paper_models_depths_in_range () =
  List.iter
    (fun (m, lo, hi) ->
      let d = Nn.Model.depth m in
      checkb (Printf.sprintf "%s depth %d in [%d, %d]" m.Nn.Model.name d lo hi) true
        (d >= lo && d <= hi))
    [
      (Nn.Model.resnet20, 180, 240);
      (Nn.Model.resnet44, 420, 520);
      (Nn.Model.resnet110, 1100, 1300);
      (Nn.Model.alexnet, 60, 100);
      (Nn.Model.vgg16, 140, 200);
      (Nn.Model.squeezenet, 150, 210);
      (Nn.Model.mobilenet, 260, 340);
    ]

let resnet_bootstraps_scale_with_depth () =
  (* the ResNet family's bootstrap counts grow linearly with the block
     count, as in Table 5 *)
  let count model =
    let _, r = Resbm.Variants.(compile resbm) prm (Nn.Lowering.lower model).Nn.Lowering.dfg in
    r.Resbm.Report.stats.Stats.bootstrap_count
  in
  let c20 = count Nn.Model.resnet20
  and c44 = count Nn.Model.resnet44 in
  checkb "44 has ~2.4x the bootstraps of 20" true
    (float_of_int c44 /. float_of_int c20 > 2.0
    && float_of_int c44 /. float_of_int c20 < 3.0)

let suite =
  [
    case "cost model: every Table 2 cell" table2_all_cells;
    plan_actions_match_inserted_rescales;
    bootstraps_only_in_bts_regions;
    managed_levels_never_negative;
    idempotent_statistics;
    case "toy ckks: other ring sizes" toy_ckks_other_ring_sizes;
    case "toy ckks: rescaled square" toy_ckks_deeper_chain;
    case "evaluator: slot mismatch" evaluator_slot_mismatch;
    case "evaluator: rotation wraps" evaluator_rotate_wraps;
    case "evaluator: seeded determinism" evaluator_deterministic_with_seed;
    case "models: depths in expected ranges" paper_models_depths_in_range;
    case "resnet family: bootstraps scale with depth" resnet_bootstraps_scale_with_depth;
  ]
