open Test_util
open Fhe_ir

let prm = Ckks.Params.default

let plan_of ?config g =
  let r = Resbm.Region.build g in
  (r, Resbm.Btsmgr.plan ?config r prm)

let no_bootstrap_when_budget_suffices () =
  (* depth 3 with fresh level-16 inputs: no bootstrap at all *)
  let g = fig3_poly () in
  let _, plan = plan_of g in
  Array.iter
    (fun (a : Resbm.Btsmgr.region_action) -> checkb "no bts" true (a.Resbm.Btsmgr.bts = None))
    plan.Resbm.Btsmgr.actions

let fig1_two_minimal_bootstraps () =
  let g = fig1_block () in
  let r = Resbm.Region.build g in
  let plan = Resbm.Btsmgr.plan r Ckks.Params.fig1 in
  let bts =
    Array.to_list plan.Resbm.Btsmgr.actions
    |> List.filter_map (fun a ->
           Option.map (fun b -> b.Resbm.Btsmgr.target) a.Resbm.Btsmgr.bts)
  in
  check (Alcotest.list Alcotest.int) "two bootstraps, minimal levels" [ 3; 2 ] bts

let fig1_max_level_bootstraps () =
  let g = fig1_block () in
  let r = Resbm.Region.build g in
  let config = { Resbm.Btsmgr.resbm_config with min_level_bts = false } in
  let plan = Resbm.Btsmgr.plan ~config r Ckks.Params.fig1 in
  let bts =
    Array.to_list plan.Resbm.Btsmgr.actions
    |> List.filter_map (fun a ->
           Option.map (fun b -> b.Resbm.Btsmgr.target) a.Resbm.Btsmgr.bts)
  in
  check (Alcotest.list Alcotest.int) "all at l_max" [ 3; 3 ] bts

let segments_partition_the_sequence =
  qcheck ~count:30 "segments chain from the first to the last region"
    (random_dfg_gen ~max_nodes:50 ~max_depth:10)
    (fun params ->
      let g = build_random_dfg params in
      let r, plan = plan_of g in
      match plan.Resbm.Btsmgr.segments with
      | [] -> r.Resbm.Region.count <= 1 || Depth.max_depth g <= prm.Ckks.Params.input_level
      | segs ->
          let rec chained = function
            | (_, d) :: ((s, _) :: _ as rest) -> s = d && chained rest
            | [ (_, d) ] -> d = r.Resbm.Region.count - 1
            | [] -> false
          in
          (match segs with (s, _) :: _ -> s = 0 | [] -> false) && chained segs)

let bootstrap_targets_within_l_max =
  qcheck ~count:30 "bootstrap targets stay within [1, l_max]"
    (random_dfg_gen ~max_nodes:50 ~max_depth:12)
    (fun params ->
      let g = build_random_dfg params in
      let _, plan = plan_of g in
      Array.for_all
        (fun (a : Resbm.Btsmgr.region_action) ->
          match a.Resbm.Btsmgr.bts with
          | None -> true
          | Some b -> b.Resbm.Btsmgr.target >= 1 && b.Resbm.Btsmgr.target <= prm.Ckks.Params.l_max)
        plan.Resbm.Btsmgr.actions)

let entry_levels_cover_rescales =
  qcheck ~count:30 "every region enters with enough level for its rescales"
    (random_dfg_gen ~max_nodes:50 ~max_depth:12)
    (fun params ->
      let g = build_random_dfg params in
      let r, plan = plan_of g in
      let last = r.Resbm.Region.count - 1 in
      Array.for_all
        (fun (a : Resbm.Btsmgr.region_action) ->
          a.Resbm.Btsmgr.entry_level >= a.Resbm.Btsmgr.rescales)
        (Array.sub plan.Resbm.Btsmgr.actions 0 last))

let min_level_never_beyond_max_level =
  qcheck ~count:20 "minimal-level plans never cost more than max-level plans"
    (random_dfg_gen ~max_nodes:40 ~max_depth:12)
    (fun params ->
      let g = build_random_dfg params in
      let r = Resbm.Region.build g in
      let minimal = Resbm.Btsmgr.plan r prm in
      let maxed =
        Resbm.Btsmgr.plan
          ~config:{ Resbm.Btsmgr.resbm_config with min_level_bts = false }
          r prm
      in
      minimal.Resbm.Btsmgr.dp_latency_ms <= maxed.Resbm.Btsmgr.dp_latency_ms +. 1e-6)

let extreme_configs_bootstrap_the_inputs () =
  (* inputs at an awkward scale (2^111, just below the rescale threshold)
     with only one fresh level: since Table 1's bootstrap re-encodes at
     scale q, the planner normalises the inputs with a bootstrap in region
     0 and the whole chain stays feasible even under l_max = 1 *)
  let g = Dfg.create () in
  let x = Dfg.input g ~scale_bits:111 ~level:1 "x" in
  let rec deepen v n = if n = 0 then v else deepen (Dfg.mul_cc g v v) (n - 1) in
  let out = deepen x 4 in
  Dfg.set_outputs g [ out ];
  let r = Resbm.Region.build g in
  let p = Ckks.Params.with_l_max { prm with input_level = 1; input_scale_bits = 111 } 1 in
  let plan = Resbm.Btsmgr.plan r p in
  checkb "inputs bootstrapped" true (plan.Resbm.Btsmgr.actions.(0).Resbm.Btsmgr.bts <> None);
  let outcome = Resbm.Plan.apply r p plan in
  checkb "managed graph legal" true
    (Result.is_ok (Scale_check.run p outcome.Resbm.Plan.dfg))

let deep_chain_uses_multiple_segments () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let rec deepen v n = if n = 0 then v else deepen (Dfg.mul_cc g v v) (n - 1) in
  let out = deepen x 40 in
  Dfg.set_outputs g [ out ];
  let _, plan = plan_of g in
  checkb "at least two segments" true (List.length plan.Resbm.Btsmgr.segments >= 2);
  let bts_count =
    Array.to_list plan.Resbm.Btsmgr.actions
    |> List.filter (fun a -> a.Resbm.Btsmgr.bts <> None)
    |> List.length
  in
  (* depth 40 with 16 fresh levels: at least ceil(24/16) bootstraps *)
  checkb "enough bootstraps" true (bts_count >= 2)

let single_region_program () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  Dfg.set_outputs g [ x ];
  let _, plan = plan_of g in
  checkb "empty plan" true (plan.Resbm.Btsmgr.segments = []);
  checkb "no actions" true
    (Array.for_all (fun a -> a.Resbm.Btsmgr.bts = None) plan.Resbm.Btsmgr.actions)

let suite =
  [
    case "input budget avoids bootstrapping" no_bootstrap_when_budget_suffices;
    case "Figure 1: two minimal-level bootstraps" fig1_two_minimal_bootstraps;
    case "Figure 1: max-level variant" fig1_max_level_bootstraps;
    segments_partition_the_sequence;
    bootstrap_targets_within_l_max;
    entry_levels_cover_rescales;
    min_level_never_beyond_max_level;
    case "extreme configs bootstrap the inputs" extreme_configs_bootstrap_the_inputs;
    case "deep chains split into segments" deep_chain_uses_multiple_segments;
    case "single-region programs" single_region_program;
  ]
