open Test_util
open Fhe_ir

(* --- BuildRegionedDFG (Section 4.1) -------------------------------------- *)

let region_count_is_depth_plus_one () =
  let g = fig3_poly () in
  let r = Resbm.Region.build g in
  checki "regions = depth + 1" (Depth.max_depth g + 1) r.Resbm.Region.count

let fig3_partition_prefers_3b () =
  (* the a1*x multiplication must sink next to its use (Figure 3b), i.e.
     into the final region, not stay at depth 1 *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let x2 = Dfg.mul_cc g x x in
  let x3 = Dfg.mul_cc g x2 x in
  let a3x3 = Dfg.mul_cp g x3 (Dfg.const g "a3") in
  let a1x = Dfg.mul_cp g x (Dfg.const g "a1") in
  let out = Dfg.add_cc g a3x3 a1x in
  Dfg.set_outputs g [ out ];
  let r = Resbm.Region.build g in
  checki "four regions" 4 r.Resbm.Region.count;
  checki "a1x sinks to the final region" 3 r.Resbm.Region.region_of.(a1x);
  checki "a3x3 in final region" 3 r.Resbm.Region.region_of.(a3x3);
  checki "x3 at its depth" 2 r.Resbm.Region.region_of.(x3);
  checki "x2 at its depth" 1 r.Resbm.Region.region_of.(x2);
  checki "input in region 0" 0 r.Resbm.Region.region_of.(x)

let inputs_stay_in_region_zero =
  qcheck ~count:40 "inputs are region 0"
    (random_dfg_gen ~max_nodes:40 ~max_depth:6)
    (fun params ->
      let g = build_random_dfg params in
      let r = Resbm.Region.build g in
      List.for_all
        (fun n ->
          match n.Dfg.kind with
          | Op.Input _ -> r.Resbm.Region.region_of.(n.Dfg.id) = 0
          | _ -> true)
        (Dfg.live_nodes g))

let regions_have_depth_one =
  qcheck ~count:40 "each region has multiplicative depth exactly one"
    (random_dfg_gen ~max_nodes:60 ~max_depth:8)
    (fun params ->
      let g = build_random_dfg params in
      let r = Resbm.Region.build g in
      (* within a region, no multiplication consumes (transitively) the
         output of another multiplication of the same region *)
      let ok = ref true in
      for region = 0 to r.Resbm.Region.count - 1 do
        let members = Resbm.Region.members r region in
        let in_region = Hashtbl.create 16 in
        Array.iter (fun id -> Hashtbl.add in_region id ()) members;
        (* reaches_mul.(id) = a region-internal path from a region mul
           reaches id *)
        let reaches = Hashtbl.create 16 in
        Array.iter
          (fun id ->
            let node = Dfg.node g id in
            let from_preds =
              List.exists
                (fun p -> Hashtbl.mem in_region p && Hashtbl.mem reaches p)
                (Dfg.preds g id)
            in
            if Op.is_mul node.Dfg.kind && from_preds then ok := false;
            if Op.is_mul node.Dfg.kind || from_preds then Hashtbl.add reaches id ())
          members
      done;
      !ok)

let edges_never_go_backward =
  qcheck ~count:40 "region assignment respects data flow"
    (random_dfg_gen ~max_nodes:60 ~max_depth:8)
    (fun params ->
      let g = build_random_dfg params in
      let r = Resbm.Region.build g in
      List.for_all
        (fun n ->
          Array.for_all
            (fun a -> r.Resbm.Region.region_of.(a) <= r.Resbm.Region.region_of.(n.Dfg.id))
            n.Dfg.args)
        (Dfg.live_nodes g))

let muls_open_their_region =
  qcheck ~count:40 "multiplication operands come from earlier regions"
    (random_dfg_gen ~max_nodes:60 ~max_depth:8)
    (fun params ->
      let g = build_random_dfg params in
      let r = Resbm.Region.build g in
      List.for_all
        (fun n ->
          if Op.is_mul n.Dfg.kind then
            Array.for_all
              (fun a ->
                (not (Op.produces_ct (Dfg.node g a).Dfg.kind))
                || r.Resbm.Region.region_of.(a) < r.Resbm.Region.region_of.(n.Dfg.id))
              n.Dfg.args
          else true)
        (Dfg.live_nodes g))

let members_cover_all_nodes =
  qcheck ~count:40 "regions partition the live nodes"
    (random_dfg_gen ~max_nodes:50 ~max_depth:6)
    (fun params ->
      let g = build_random_dfg params in
      let r = Resbm.Region.build g in
      let total =
        Array.fold_left
          (fun acc region -> acc + Array.length region)
          0 r.Resbm.Region.regions
      in
      total = List.length (Dfg.live_nodes g))

let live_out_detection () =
  let g = fig3_poly () in
  let r = Resbm.Region.build g in
  (* region 1 holds x2; its live-outs feed x3 in region 2 *)
  let lo = Resbm.Region.live_out r 1 in
  checkb "x2's relin is live-out" true (lo <> []);
  (* the final region's output node is live-out *)
  let last = r.Resbm.Region.count - 1 in
  checkb "program output is live-out" true
    (List.exists (fun id -> List.mem id (Dfg.outputs g)) (Resbm.Region.live_out r last))

let region_mul_queries () =
  let g = fig1_block () in
  let r = Resbm.Region.build g in
  checkb "conv region has mul_cp" true (Resbm.Region.has_mul_cp r 1);
  checkb "square region has mul_cc" true (Resbm.Region.has_mul_cc r 2);
  checkb "region 0 has no muls" true (Resbm.Region.muls r 0 = [])

let rejects_invalid_graph () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cc_raw g x x in
  let r = Dfg.rotate g m 1 in
  Dfg.set_outputs g [ r ];
  checkb "invalid graph rejected" true
    (match Resbm.Region.build g with
    | _ -> false
    | exception Invalid_argument _ -> true)

let suite =
  [
    case "region count = depth + 1" region_count_is_depth_plus_one;
    case "Figure 3: lazy placement of off-path muls" fig3_partition_prefers_3b;
    inputs_stay_in_region_zero;
    regions_have_depth_one;
    edges_never_go_backward;
    muls_open_their_region;
    members_cover_all_nodes;
    case "live-out detection" live_out_detection;
    case "region mul queries" region_mul_queries;
    case "rejects invalid graphs" rejects_invalid_graph;
  ]
