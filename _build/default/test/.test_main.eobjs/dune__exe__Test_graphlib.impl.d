test/test_graphlib.ml: Alcotest Array Ckks Float Graphlib Int64 List Printf QCheck2 Test_util
