test/test_ckks.ml: Array Ckks Float Int64 List QCheck2 Test_util
