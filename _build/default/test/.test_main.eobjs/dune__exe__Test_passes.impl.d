test/test_passes.ml: Array Ckks Depth Dfg Fhe_ir Float Latency List Nn Op Passes Resbm Result Scale_check Test_util
