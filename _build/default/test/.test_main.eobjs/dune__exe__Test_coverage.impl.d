test/test_coverage.ml: Array Ckks Dfg Fhe_ir Float List Nn Op Printf Resbm Scale_check Stats Test_util
