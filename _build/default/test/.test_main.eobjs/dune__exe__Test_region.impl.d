test/test_region.ml: Array Depth Dfg Fhe_ir Hashtbl List Op Resbm Test_util
