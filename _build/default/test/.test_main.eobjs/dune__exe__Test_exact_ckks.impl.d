test/test_exact_ckks.ml: Alcotest Array Ckks Float Int64 List Printf QCheck2 Test_util
