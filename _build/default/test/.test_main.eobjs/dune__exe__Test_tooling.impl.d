test/test_tooling.ml: Array Ckks Dfg Dot Fhe_ir Filename Format Latency List Nn Op Printf Resbm Result Scale_check String Sys Test_util
