test/test_ir.ml: Alcotest Array Ckks Depth Dfg Fhe_ir Float Format Hashtbl Interp Latency Legalize List Op Option Resbm Result Scale_check Stats Test_util
