test/test_compile.ml: Alcotest Array Ckks Dfg Fhe_ir Float Interp Latency List Nn Printf Resbm Result Scale_check Stats Test_util
