test/test_placement.ml: Alcotest Array Ckks Dfg Fhe_ir Float Hashtbl List Op QCheck2 Resbm Test_util
