test/test_util.ml: Alcotest Array Ckks Dfg Fhe_ir Hashtbl Int64 List Op Printf QCheck2 QCheck_alcotest Random
