test/test_frontend.ml: Alcotest Array Ckks Depth Dfg Emit Fhe_ir Fhe_lang Filename Float Hashtbl Int64 Interp List Liveness Nn Noise_check Op Printf QCheck2 Resbm String Sys Test_util
