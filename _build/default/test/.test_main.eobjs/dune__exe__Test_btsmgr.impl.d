test/test_btsmgr.ml: Alcotest Array Ckks Depth Dfg Fhe_ir List Option Resbm Result Scale_check Test_util
