test/test_waterline.ml: Alcotest Array Ckks Dfg Fhe_ir Float Hashtbl Int64 Interp Nn Printf Resbm Result Scale_check Stats Test_util
