test/test_nn.ml: Alcotest Array Ckks Depth Dfg Fhe_ir Float List Nn Printf QCheck2 Resbm Stats Test_util
