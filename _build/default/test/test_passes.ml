open Test_util
open Fhe_ir

let prm = Ckks.Params.default

let plain g ~dim =
  Nn.Plain_eval.run g
    ~input:(fun _ -> input_env ~dim 31L)
    ~consts:(Passes.Const_fold.resolving (const_env ~dim))

let same_outputs a b =
  List.for_all2 (fun x y -> Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-9) x y) a b

(* --- DCE ------------------------------------------------------------------ *)

let dce_removes_dead_chain () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let live = Dfg.rotate g x 1 in
  let dead1 = Dfg.rotate g x 2 in
  let _dead2 = Dfg.rotate g dead1 3 in
  Dfg.set_outputs g [ live ];
  let removed = Passes.Dce.run g in
  checki "two removed" 2 removed;
  checki "two live" 2 (List.length (Dfg.live_nodes g));
  checkb "valid" true (Dfg.validate g = Ok ())

let dce_keeps_outputs () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  Dfg.set_outputs g [ x ];
  checki "nothing removed" 0 (Passes.Dce.run g)

(* --- CSE ------------------------------------------------------------------ *)

let cse_merges_identical () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let a = Dfg.rotate g x 1 in
  let b = Dfg.rotate g x 1 in
  let s = Dfg.add_cc g a b in
  Dfg.set_outputs g [ s ];
  let before = plain g ~dim:4 in
  let merged = Passes.Cse.run g in
  checkb "merged at least one" true (merged >= 1);
  checkb "valid" true (Dfg.validate g = Ok ());
  checkb "semantics preserved" true (same_outputs before (plain g ~dim:4));
  (* the add now has the same node twice *)
  let add = Dfg.node g s in
  checkb "args identical" true (add.Dfg.args.(0) = add.Dfg.args.(1))

let cse_commutative_add () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let y = Dfg.input g "y" in
  let a = Dfg.add_cc g x y in
  let b = Dfg.add_cc g y x in
  let out = Dfg.add_cc g a b in
  Dfg.set_outputs g [ out ];
  checkb "x+y merged with y+x" true (Passes.Cse.run g >= 1)

let cse_respects_freq () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let a = Dfg.rotate g ~freq:2 x 1 in
  let b = Dfg.rotate g ~freq:3 x 1 in
  let s = Dfg.add_cc g a b in
  Dfg.set_outputs g [ s ];
  checki "different freq kept apart" 0 (Passes.Cse.run g)

let cse_merges_bootstraps_fig5 () =
  (* Figure 5a: after naive management, x carries two bootstraps to the
     same level; CSE merges them *)
  let g = Dfg.create () in
  let x = Dfg.input g ~level:0 "x" in
  let b1 = Dfg.bootstrap g ~target_level:3 x in
  let b2 = Dfg.bootstrap g ~target_level:3 x in
  let m = Dfg.mul_cc g b1 b2 in
  Dfg.set_outputs g [ m ];
  checkb "bootstraps merged" true (Passes.Cse.run g >= 1);
  let live_bts =
    List.filter
      (fun n -> match n.Dfg.kind with Op.Bootstrap _ -> true | _ -> false)
      (Dfg.live_nodes g)
  in
  checki "one bootstrap left" 1 (List.length live_bts)

let cse_transitive_chains =
  qcheck ~count:30 "CSE is idempotent and semantics-preserving"
    (random_dfg_gen ~max_nodes:40 ~max_depth:5)
    (fun params ->
      let g = build_random_dfg params in
      let before = plain g ~dim:4 in
      ignore (Passes.Cse.run g);
      ignore (Passes.Dce.run g);
      let second = Passes.Cse.run g in
      Dfg.validate g = Ok () && second = 0 && same_outputs before (plain g ~dim:4))

(* --- Const folding ---------------------------------------------------------- *)

let const_fold_collapses_chain () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m1 = Dfg.mul_cp g x (Dfg.const g "a") in
  let m2 = Dfg.mul_cp g m1 (Dfg.const g "b") in
  Dfg.set_outputs g [ m2 ];
  let before = plain g ~dim:4 in
  checki "one fold" 1 (Passes.Const_fold.run g);
  ignore (Passes.Dce.run g);
  checki "depth reduced" 1 (Depth.max_depth g);
  checkb "valid" true (Dfg.validate g = Ok ());
  checkb "same function via resolving" true (same_outputs before (plain g ~dim:4))

let const_fold_resolver_parses () =
  let base name = [| (if name = "a" then 3.0 else 5.0) |] in
  let r = Passes.Const_fold.resolving base in
  check_float "product" 15.0 (r "(a*b)").(0);
  check_float "nested" 45.0 (r "((a*b)*a)").(0);
  check_float "plain name" 3.0 (r "a").(0)

let const_fold_keeps_shared_intermediates () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m1 = Dfg.mul_cp g x (Dfg.const g "a") in
  let m2 = Dfg.mul_cp g m1 (Dfg.const g "b") in
  let s = Dfg.add_cc g m1 m1 in
  Dfg.set_outputs g [ m2; s ];
  (* m1 has another consumer: folding must not fire *)
  checki "no fold" 0 (Passes.Const_fold.run g)

let fig5_pipeline_reduces_depth () =
  (* const folding + CSE turns the Figure 5a shape into 5b: the depth of z
     drops, so management needs fewer levels *)
  let g = fig5_program () in
  let d0 = Depth.max_depth g in
  ignore (Passes.Const_fold.run g);
  ignore (Passes.Cse.run g);
  ignore (Passes.Dce.run g);
  checkb "valid" true (Dfg.validate g = Ok ());
  checkb "depth not increased" true (Depth.max_depth g <= d0)

(* --- Modswitch hoisting -------------------------------------------------------- *)

let ms_opt_hoists_above_rotate () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let r = Dfg.rotate g x 1 in
  let m = Dfg.modswitch g r in
  Dfg.set_outputs g [ m ];
  let lat_before = Latency.total prm g in
  checkb "hoisted" true (Passes.Ms_opt.run prm g >= 1);
  checkb "valid" true (Result.is_ok (Scale_check.run prm g));
  checkb "cheaper" true (Latency.total prm g < lat_before)

let ms_opt_hoists_through_mul_pair () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cc g x x in
  let r = Dfg.rescale g m in
  let ms = Dfg.modswitch g r in
  Dfg.set_outputs g [ ms ];
  (* rescale is an SMO: hoisting stops there *)
  checki "no hoist through rescale" 0 (Passes.Ms_opt.run prm g)

let ms_opt_respects_sharing () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let r = Dfg.rotate g x 1 in
  let ms = Dfg.modswitch g r in
  let other = Dfg.add_cc g r x in
  Dfg.set_outputs g [ ms; other ];
  (* r has two users: the modswitch cannot move above it *)
  checki "no hoist" 0 (Passes.Ms_opt.run prm g)

let ms_opt_preserves_semantics =
  qcheck ~count:20 "hoisting preserves semantics and legality"
    (random_dfg_gen ~max_nodes:30 ~max_depth:6)
    (fun params ->
      let g = build_random_dfg params in
      match Resbm.Driver.compile prm g with
      | managed, _ ->
          let before = plain managed ~dim:4 in
          ignore (Passes.Ms_opt.run prm managed);
          Result.is_ok (Scale_check.run prm managed)
          && same_outputs before (plain managed ~dim:4)
      | exception Resbm.Btsmgr.No_plan _ -> true)

let ms_opt_never_hurts =
  qcheck ~count:20 "hoisting never increases latency"
    (random_dfg_gen ~max_nodes:30 ~max_depth:6)
    (fun params ->
      let g = build_random_dfg params in
      match Resbm.Driver.compile prm g with
      | managed, _ ->
          let before = Latency.total prm managed in
          ignore (Passes.Ms_opt.run prm managed);
          Latency.total prm managed <= before +. 1e-6
      | exception Resbm.Btsmgr.No_plan _ -> true)

let suite =
  [
    case "dce: removes dead chains" dce_removes_dead_chain;
    case "dce: keeps outputs" dce_keeps_outputs;
    case "cse: merges identical nodes" cse_merges_identical;
    case "cse: commutative canonicalisation" cse_commutative_add;
    case "cse: different freq kept apart" cse_respects_freq;
    case "cse: merges Figure 5 bootstraps" cse_merges_bootstraps_fig5;
    cse_transitive_chains;
    case "const-fold: collapses multiplier chains" const_fold_collapses_chain;
    case "const-fold: resolver arithmetic" const_fold_resolver_parses;
    case "const-fold: shared intermediates block folding" const_fold_keeps_shared_intermediates;
    case "Figure 5 pipeline reduces depth" fig5_pipeline_reduces_depth;
    case "ms-opt: hoists above rotations" ms_opt_hoists_above_rotate;
    case "ms-opt: stops at SMOs" ms_opt_hoists_through_mul_pair;
    case "ms-opt: respects sharing" ms_opt_respects_sharing;
    ms_opt_preserves_semantics;
    ms_opt_never_hurts;
  ]
