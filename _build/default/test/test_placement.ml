open Test_util
open Fhe_ir

let prm = Ckks.Params.default

(* A conv-like region: three freq-weighted multiplications, an add tree, a
   cheap frequency-1 repack at the end.  The interesting property: the
   min-cut should place the single rescale at the narrow frequency-1 tail
   rather than after each multiplication. *)
let conv_region_graph ~channels =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let t0 = Dfg.mul_cp g ~freq:channels x (Dfg.const g "w0") in
  let t1 = Dfg.mul_cp g ~freq:channels (Dfg.rotate g x (-1)) (Dfg.const g "w1") in
  let t2 = Dfg.mul_cp g ~freq:channels (Dfg.rotate g x 1) (Dfg.const g "w2") in
  let s = Dfg.add_cc g ~freq:channels (Dfg.add_cc g ~freq:channels t0 t1) t2 in
  let repack = Dfg.add_cc g s (Dfg.rotate g s channels) in
  Dfg.set_outputs g [ repack ];
  (g, repack)

let smo_cut_exists () =
  let g, _ = conv_region_graph ~channels:16 in
  let r = Resbm.Region.build g in
  let cut = Resbm.Smoplc.run r prm ~region:1 ~level:2 in
  checkb "non-empty cut" true (cut.Resbm.Cut.edges <> []);
  checkb "finite value" true (Float.is_finite cut.Resbm.Cut.value)

let smo_cut_prefers_cheap_tail () =
  let g, repack = conv_region_graph ~channels:64 in
  let r = Resbm.Region.build g in
  let cut = Resbm.Smoplc.run r prm ~region:1 ~level:2 in
  (* with 64 channels, rescaling each mul costs 64x; the cut must use the
     frequency-1 repack live-out edge *)
  check (Alcotest.list Alcotest.bool) "single boundary edge" [ true ]
    (List.map
       (function Resbm.Cut.Boundary_out { tail } -> tail = repack | _ -> false)
       cut.Resbm.Cut.edges)

let smo_cut_respects_relin () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cc g x x in
  Dfg.set_outputs g [ m ];
  let r = Resbm.Region.build g in
  let cut = Resbm.Smoplc.run r prm ~region:1 ~level:2 in
  (* the only legal position is after the relin, never between mul and
     relin *)
  List.iter
    (fun edge ->
      match edge with
      | Resbm.Cut.Internal { tail; _ } | Resbm.Cut.Boundary_out { tail } ->
          checkb "tail is not a raw mul_cc" true ((Dfg.node g tail).Dfg.kind <> Op.Mul_cc)
      | Resbm.Cut.Boundary_in _ -> Alcotest.fail "SMO cut has no boundary-in edges")
    cut.Resbm.Cut.edges

(* Every multiplication-to-live-out path must cross the cut exactly once. *)
let paths_cross_cut_once =
  qcheck ~count:40 "SMO cut separates sources from live-outs exactly once"
    (random_dfg_gen ~max_nodes:40 ~max_depth:4)
    (fun params ->
      let g = build_random_dfg params in
      let r = Resbm.Region.build g in
      let ok = ref true in
      for region = 1 to r.Resbm.Region.count - 1 do
        let members = Resbm.Region.ct_members r region in
        if Resbm.Region.muls r region <> [] && members <> [] then begin
          let cut = Resbm.Smoplc.run r prm ~region ~level:2 in
          let crossing = Hashtbl.create 16 in
          List.iter
            (fun e ->
              match e with
              | Resbm.Cut.Internal { tail; head } -> Hashtbl.replace crossing (tail, head) ()
              | Resbm.Cut.Boundary_out { tail } -> Hashtbl.replace crossing (tail, -1) ()
              | Resbm.Cut.Boundary_in _ -> ())
            cut.Resbm.Cut.edges;
          let in_region = Hashtbl.create 16 in
          List.iter (fun id -> Hashtbl.add in_region id ()) members;
          (* count crossings along every source-to-boundary path via DFS *)
          let outputs = Dfg.outputs g in
          let rec walk id crossings =
            if crossings > 1 then ok := false
            else begin
              let succs = List.filter (Hashtbl.mem in_region) (Dfg.succs g id) in
              let leaves_region =
                List.mem id outputs
                || List.exists (fun u -> not (Hashtbl.mem in_region u)) (Dfg.succs g id)
              in
              if leaves_region then begin
                let total = crossings + if Hashtbl.mem crossing (id, -1) then 1 else 0 in
                if total <> 1 then ok := false
              end;
              List.iter
                (fun m ->
                  walk m (crossings + if Hashtbl.mem crossing (id, m) then 1 else 0))
                succs
            end
          in
          List.iter (fun s -> walk s 0) (Resbm.Region.muls r region)
        end
      done;
      !ok)

(* --- BTSPLC ---------------------------------------------------------------- *)

let bts_cut_groups_shared_rescale () =
  (* rotations after a shared rescale: a single bootstrap after the
     rescale must beat bootstrapping every rotation *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cc g x x in
  let r1 = Dfg.rotate g m 1 in
  let r2 = Dfg.rotate g m 2 in
  let r3 = Dfg.rotate g m 3 in
  (* consumers outside the region *)
  let o1 = Dfg.mul_cc g r1 r2 in
  let o2 = Dfg.mul_cc g r3 r3 in
  Dfg.set_outputs g [ o1; o2 ];
  let reg = Resbm.Region.build g in
  let subgraph = [ r1; r2; r3 ] in
  let cut = Resbm.Btsplc.run reg prm ~region:1 ~lbts:4 ~subgraph in
  (* all cut edges must be boundary-in (bootstrap directly after the
     shared producer) *)
  checkb "boundary-in cut" true
    (List.for_all
       (function Resbm.Cut.Boundary_in _ -> true | _ -> false)
       cut.Resbm.Cut.edges);
  checkb "cheaper than three bootstraps" true
    (cut.Resbm.Cut.value
    < 3.0 *. Ckks.Cost_model.cost Ckks.Cost_model.Bootstrap ~level:4)

let bts_cut_rejects_bad_args () =
  let g = fig3_poly () in
  let reg = Resbm.Region.build g in
  checkb "lbts 0 rejected" true
    (match Resbm.Btsplc.run reg prm ~region:1 ~lbts:0 ~subgraph:[ 1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "empty subgraph rejected" true
    (match Resbm.Btsplc.run reg prm ~region:1 ~lbts:1 ~subgraph:[] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- SCALEMGR ------------------------------------------------------------- *)

let scalemgr_fig1_sequences () =
  let g = fig1_block () in
  let r = Resbm.Region.build g in
  let p = Ckks.Params.fig1 in
  (* from the first conv region to the last: every multiplication region
     rescales once under q = q_w *)
  let sp =
    Resbm.Scalemgr.plan r p ~src:1 ~dst:6 ~src_entry_scale:40 ~bts_at_src:true
  in
  check (Alcotest.list Alcotest.int) "every region rescales" [ 1; 2; 3; 4; 5; 6 ]
    sp.Resbm.Scalemgr.rescaling;
  checki "levels consumed beyond src" 5 sp.Resbm.Scalemgr.lbts;
  Array.iter
    (fun info ->
      checki "peak is 2q" 80 info.Resbm.Scalemgr.peak_scale;
      checki "out back to q" 40 info.Resbm.Scalemgr.out_scale)
    sp.Resbm.Scalemgr.infos

let scalemgr_no_mul_regions_pass_through () =
  let g = fig3_poly () in
  let r = Resbm.Region.build g in
  let sp =
    Resbm.Scalemgr.plan r prm ~src:0 ~dst:0 ~src_entry_scale:56 ~bts_at_src:false
  in
  checki "no rescale in the input region" 0 sp.Resbm.Scalemgr.lbts;
  checki "scale unchanged" 56 sp.Resbm.Scalemgr.infos.(0).Resbm.Scalemgr.out_scale

let scalemgr_bts_resets_scale () =
  let g = fig1_block () in
  let r = Resbm.Region.build g in
  let p = Ckks.Params.fig1 in
  let with_bts =
    Resbm.Scalemgr.plan r p ~src:1 ~dst:2 ~src_entry_scale:40 ~bts_at_src:true
  in
  (* after the bootstrap at src, region 2 sees scale q *)
  checki "entry scale after bootstrap" 40
    with_bts.Resbm.Scalemgr.infos.(1).Resbm.Scalemgr.entry_scale

let scalemgr_multi_rescale () =
  (* a ciphertext-ciphertext multiplication on an inflated scale needs two
     rescales in a single region *)
  let g = Dfg.create () in
  let x = Dfg.input g ~scale_bits:112 ~level:4 "x" in
  let m = Dfg.mul_cc g x x in
  Dfg.set_outputs g [ m ];
  let r = Resbm.Region.build g in
  let sp =
    Resbm.Scalemgr.plan r prm ~src:1 ~dst:1 ~src_entry_scale:112 ~bts_at_src:false
  in
  (* eligibility is scale >= q*q_w, so 224 -> 168 -> 112 -> 56: the 112
     step is still eligible *)
  checki "three rescales" 3 sp.Resbm.Scalemgr.infos.(0).Resbm.Scalemgr.rescales;
  checki "peak doubled" 224 sp.Resbm.Scalemgr.infos.(0).Resbm.Scalemgr.peak_scale;
  checki "out scale" 56 sp.Resbm.Scalemgr.infos.(0).Resbm.Scalemgr.out_scale

let scalemgr_early_rescaling =
  qcheck ~count:30 "rescaling fires as soon as the scale is eligible"
    (random_dfg_gen ~max_nodes:40 ~max_depth:6)
    (fun params ->
      let g = build_random_dfg params in
      let r = Resbm.Region.build g in
      let last = r.Resbm.Region.count - 1 in
      let sp =
        Resbm.Scalemgr.plan r prm ~src:0 ~dst:last ~src_entry_scale:56 ~bts_at_src:false
      in
      Array.for_all
        (fun info ->
          (* whenever eligible, a rescale happened: out scale stays below
             q*q_w *)
          info.Resbm.Scalemgr.out_scale < 112)
        sp.Resbm.Scalemgr.infos)

let suite =
  [
    case "smoplc: produces a cut" smo_cut_exists;
    case "smoplc: prefers the frequency-1 tail" smo_cut_prefers_cheap_tail;
    case "smoplc: never splits mul/relin" smo_cut_respects_relin;
    paths_cross_cut_once;
    case "btsplc: groups a shared rescale" bts_cut_groups_shared_rescale;
    case "btsplc: argument validation" bts_cut_rejects_bad_args;
    case "scalemgr: Figure 1 sequence" scalemgr_fig1_sequences;
    case "scalemgr: mul-free regions pass through" scalemgr_no_mul_regions_pass_through;
    case "scalemgr: bootstrap resets scale" scalemgr_bts_resets_scale;
    case "scalemgr: stacked rescales" scalemgr_multi_rescale;
    scalemgr_early_rescaling;
  ]

(* Theorem 1 (practical form): SMOPLC's min-cut region latency does not
   lose to EVA's eager or PARS's lazy forced placements beyond the error
   of Algorithm 4's weight model (out-degree division, reconvergent
   double counting). *)
let min_cut_dominates_forced_placements =
  qcheck ~count:30 "min-cut region latency within 10% of EVA/PARS or better"
    QCheck2.Gen.(pair (random_dfg_gen ~max_nodes:50 ~max_depth:6) (int_range 1 8))
    (fun (params, entry_level) ->
      let g = build_random_dfg params in
      let r = Resbm.Region.build g in
      let cache = Resbm.Region_eval.create_cache () in
      let ok = ref true in
      for region = 1 to r.Resbm.Region.count - 1 do
        if Resbm.Region.muls r region <> [] then begin
          let eval smo_mode =
            (Resbm.Region_eval.eval cache r prm ~smo_mode
               ~bts_mode:Resbm.Region_eval.Bts_min_cut ~region ~entry_level ~rescales:1
               ~bts:None)
              .Resbm.Region_eval.latency_ms
          in
          let mincut = eval Resbm.Region_eval.Smo_min_cut in
          if
            mincut > (1.1 *. eval Resbm.Region_eval.Smo_eva) +. 1e-6
            || mincut > (1.1 *. eval Resbm.Region_eval.Smo_pars) +. 1e-6
          then ok := false
        end
      done;
      !ok)

(* Theorem 2 counterpart: the bootstrap min-cut never loses to the
   region-end placement Fhelipe and DaCapo use. *)
let bts_min_cut_dominates_region_end =
  qcheck ~count:30 "bootstrap min-cut within 10% of region-end or better"
    QCheck2.Gen.(pair (random_dfg_gen ~max_nodes:50 ~max_depth:6) (int_range 2 12))
    (fun (params, lbts) ->
      let g = build_random_dfg params in
      let r = Resbm.Region.build g in
      let cache = Resbm.Region_eval.create_cache () in
      let ok = ref true in
      for region = 1 to r.Resbm.Region.count - 1 do
        if Resbm.Region.muls r region <> [] then begin
          let eval bts_mode =
            (Resbm.Region_eval.eval cache r prm ~smo_mode:Resbm.Region_eval.Smo_min_cut
               ~bts_mode ~region ~entry_level:1 ~rescales:1 ~bts:(Some lbts))
              .Resbm.Region_eval.latency_ms
          in
          (* The edge weights of Algorithm 5 approximate the real insertion
             cost (in-degree division, reconvergent double counting), so the
             min-cut can lose to the end placement by the approximation
             error; require it within 10 % or better. *)
          if
            eval Resbm.Region_eval.Bts_min_cut
            > 1.1 *. eval Resbm.Region_eval.Bts_region_end +. 1e-6
          then ok := false
        end
      done;
      !ok)

let theorem_suite =
  [ min_cut_dominates_forced_placements; bts_min_cut_dominates_region_end ]

let suite = suite @ theorem_suite
