open Test_util

(* --- Params ------------------------------------------------------------ *)

let params_defaults () =
  let p = Ckks.Params.default in
  checki "scale" 56 p.Ckks.Params.scale_bits;
  checki "l_max" 16 p.Ckks.Params.l_max;
  checki "slots" 32768 (Ckks.Params.slot_count p);
  checkb "valid" true (Ckks.Params.validate p = Ok ())

let params_fig1 () =
  let p = Ckks.Params.fig1 in
  checki "scale" 40 p.Ckks.Params.scale_bits;
  checki "l_max" 3 p.Ckks.Params.l_max;
  checki "input level" 1 p.Ckks.Params.input_level;
  checkb "valid" true (Ckks.Params.validate p = Ok ())

let params_with_l_max () =
  let p = Ckks.Params.with_l_max Ckks.Params.default 10 in
  checki "l_max replaced" 10 p.Ckks.Params.l_max;
  checki "rest unchanged" 56 p.Ckks.Params.scale_bits

let params_invalid () =
  let bad fields = Ckks.Params.validate fields <> Ok () in
  checkb "zero scale" true (bad { Ckks.Params.default with scale_bits = 0 });
  checkb "waterline above q" true
    (bad { Ckks.Params.default with waterline_bits = 100 });
  checkb "l_max zero" true (bad { Ckks.Params.default with l_max = 0 });
  checkb "negative input level" true (bad { Ckks.Params.default with input_level = -1 })

(* --- Cost model --------------------------------------------------------- *)

let table2_exact_values () =
  let open Ckks.Cost_model in
  (* spot-check the published grid points *)
  check_float "AddCP L0" 0.138 (cost Add_cp ~level:0);
  check_float "AddCC L16" 3.574 (cost Add_cc ~level:16);
  check_float "MulCP L2" 1.175 (cost Mul_cp ~level:2);
  check_float "MulCC L16" 15.638 (cost Mul_cc ~level:16);
  check_float "Rotate L0" 58.422 (cost Rotate ~level:0);
  check_float "Relin L8" 130.493 (cost Relin ~level:8);
  check_float "Rescale L10" 33.792 (cost Rescale ~level:10);
  check_float "Bootstrap L16" 44719.0 (cost Bootstrap ~level:16);
  check_float "Bootstrap L2" 21005.0 (cost Bootstrap ~level:2)

let table2_interpolation () =
  let open Ckks.Cost_model in
  (* odd levels interpolate linearly between neighbours *)
  check_float "AddCC L1" ((0.164 +. 0.548) /. 2.0) (cost Add_cc ~level:1);
  check_float "Rescale L3" ((9.085 +. 15.107) /. 2.0) (cost Rescale ~level:3);
  check_float "Bootstrap L15" ((41582.0 +. 44719.0) /. 2.0) (cost Bootstrap ~level:15)

let table2_modswitch_cheap () =
  let open Ckks.Cost_model in
  checkb "modswitch cheapest" true (cost Modswitch ~level:16 < cost Add_cp ~level:0)

let table2_extrapolation () =
  let open Ckks.Cost_model in
  (* beyond the grid: linear with the last slope *)
  let at16 = cost Mul_cc ~level:16 and at18 = cost Mul_cc ~level:18 in
  checkb "grows beyond 16" true (at18 > at16);
  check_float ~eps:1e-6 "slope" (15.638 +. (15.638 -. 13.053)) at18

let table2_nonnegative =
  qcheck ~count:200 "costs are non-negative and defined everywhere"
    QCheck2.Gen.(pair (int_range 0 8) (int_range 0 40))
    (fun (op_idx, level) ->
      let op = List.nth Ckks.Cost_model.all_ops op_idx in
      Ckks.Cost_model.cost op ~level >= 0.0)

let table2_monotone_in_level =
  qcheck ~count:200 "latency grows (weakly) with the level"
    QCheck2.Gen.(pair (int_range 0 7) (int_range 0 20))
    (fun (op_idx, level) ->
      let op = List.nth Ckks.Cost_model.all_ops op_idx in
      Ckks.Cost_model.cost op ~level:(level + 1) >= Ckks.Cost_model.cost op ~level -. 1e-9)

(* --- PRNG --------------------------------------------------------------- *)

let prng_deterministic () =
  let a = Ckks.Prng.create 42L and b = Ckks.Prng.create 42L in
  for _ = 1 to 100 do
    check_float "same stream" (Ckks.Prng.float a) (Ckks.Prng.float b)
  done

let prng_seed_sensitivity () =
  let a = Ckks.Prng.create 1L and b = Ckks.Prng.create 2L in
  checkb "different seeds differ" true (Ckks.Prng.int64 a <> Ckks.Prng.int64 b)

let prng_float_range =
  qcheck ~count:200 "floats in [0,1)" QCheck2.Gen.(int_bound 1_000_000) (fun seed ->
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let v = Ckks.Prng.float rng in
      v >= 0.0 && v < 1.0)

let prng_int_bound =
  qcheck ~count:200 "ints below bound" QCheck2.Gen.(pair (int_bound 100_000) (int_range 1 50))
    (fun (seed, bound) ->
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let v = Ckks.Prng.int rng ~bound in
      v >= 0 && v < bound)

let prng_mean () =
  let rng = Ckks.Prng.create 7L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Ckks.Prng.float rng
  done;
  checkb "mean near 0.5" true (Float.abs ((!sum /. float_of_int n) -. 0.5) < 0.02)

let prng_gaussian_moments () =
  let rng = Ckks.Prng.create 11L in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let v = Ckks.Prng.gaussian rng in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  checkb "mean near 0" true (Float.abs (!sum /. float_of_int n) < 0.05);
  checkb "variance near 1" true (Float.abs ((!sq /. float_of_int n) -. 1.0) < 0.1)

(* --- Plaintext ---------------------------------------------------------- *)

let plaintext_quantisation () =
  let pt = Ckks.Plaintext.encode ~scale_bits:8 [| 0.3; -0.7 |] in
  (* quantised to multiples of 2^-8 *)
  Array.iter
    (fun v ->
      let scaled = v *. 256.0 in
      check_float ~eps:1e-9 "on grid" (Float.round scaled) scaled)
    pt.Ckks.Plaintext.slots;
  checkb "error bound" true (pt.Ckks.Plaintext.err <= 1.0 /. 256.0)

let plaintext_re_encode () =
  let pt = Ckks.Plaintext.encode ~scale_bits:8 [| 0.3 |] in
  let pt' = Ckks.Plaintext.re_encode pt ~scale_bits:16 in
  checki "new scale" 16 pt'.Ckks.Plaintext.scale_bits;
  checkb "value close" true (Float.abs (pt'.Ckks.Plaintext.slots.(0) -. 0.3) < 0.01)

(* --- Evaluator: Table 1 semantics --------------------------------------- *)

let prm = Ckks.Params.default

let ev () = Ckks.Evaluator.create ~seed:99L prm

let close ?(eps = 1e-6) a b = Float.abs (a -. b) < eps

let eval_add_cc () =
  let e = ev () in
  let a = Ckks.Evaluator.encrypt e [| 1.0; 2.0 |] in
  let b = Ckks.Evaluator.encrypt e [| 0.5; -1.0 |] in
  let c = Ckks.Evaluator.add_cc e a b in
  let d = Ckks.Evaluator.decrypt e c in
  checkb "sum" true (close d.(0) 1.5 && close d.(1) 1.0);
  checki "scale preserved" a.Ckks.Ciphertext.scale_bits c.Ckks.Ciphertext.scale_bits;
  checki "level preserved" a.Ckks.Ciphertext.level c.Ckks.Ciphertext.level

let eval_mul_cc_scale_sum () =
  let e = ev () in
  let a = Ckks.Evaluator.encrypt e [| 0.5 |] in
  let b = Ckks.Evaluator.encrypt e [| 0.25 |] in
  let m = Ckks.Evaluator.mul_cc e a b in
  checki "scales add" (2 * prm.Ckks.Params.scale_bits) m.Ckks.Ciphertext.scale_bits;
  checki "size 3 before relin" 3 m.Ckks.Ciphertext.size;
  let r = Ckks.Evaluator.relin e m in
  checki "size 2 after relin" 2 r.Ckks.Ciphertext.size;
  let d = Ckks.Evaluator.decrypt e r in
  checkb "product" true (close ~eps:1e-4 d.(0) 0.125)

let eval_mul_cp () =
  let e = ev () in
  let a = Ckks.Evaluator.encrypt e [| 0.5 |] in
  let pt = Ckks.Evaluator.encode e [| 0.5 |] in
  let m = Ckks.Evaluator.mul_cp e a pt in
  checki "scale adds waterline"
    (prm.Ckks.Params.input_scale_bits + prm.Ckks.Params.waterline_bits)
    m.Ckks.Ciphertext.scale_bits;
  let d = Ckks.Evaluator.decrypt e m in
  checkb "product" true (close ~eps:1e-4 d.(0) 0.25)

let eval_rotate () =
  let e = ev () in
  let a = Ckks.Evaluator.encrypt e [| 1.0; 2.0; 3.0; 4.0 |] in
  let r = Ckks.Evaluator.rotate e a 1 in
  let d = Ckks.Evaluator.decrypt e r in
  checkb "rotated left" true (close ~eps:1e-4 d.(0) 2.0 && close ~eps:1e-4 d.(3) 1.0);
  let r2 = Ckks.Evaluator.rotate e a (-1) in
  let d2 = Ckks.Evaluator.decrypt e r2 in
  checkb "rotated right" true (close ~eps:1e-4 d2.(0) 4.0)

let eval_rescale () =
  let e = ev () in
  let a = Ckks.Evaluator.encrypt e [| 0.5 |] in
  let pt = Ckks.Evaluator.encode e [| 0.5 |] in
  let m = Ckks.Evaluator.mul_cp e a pt in
  let r = Ckks.Evaluator.rescale e m in
  checki "scale reduced by q" (m.Ckks.Ciphertext.scale_bits - prm.Ckks.Params.scale_bits)
    r.Ckks.Ciphertext.scale_bits;
  checki "level dropped" (m.Ckks.Ciphertext.level - 1) r.Ckks.Ciphertext.level;
  checkb "value preserved" true
    (close ~eps:1e-4 (Ckks.Evaluator.decrypt e r).(0) 0.25)

let eval_modswitch () =
  let e = ev () in
  let a = Ckks.Evaluator.encrypt e [| 0.5 |] in
  let m = Ckks.Evaluator.modswitch e a in
  checki "level dropped" (a.Ckks.Ciphertext.level - 1) m.Ckks.Ciphertext.level;
  checki "scale unchanged" a.Ckks.Ciphertext.scale_bits m.Ckks.Ciphertext.scale_bits

let eval_bootstrap () =
  let e = ev () in
  let a = Ckks.Evaluator.encrypt e ~level:1 [| 0.5 |] in
  let b = Ckks.Evaluator.bootstrap e a ~target_level:12 in
  checki "level raised" 12 b.Ckks.Ciphertext.level;
  checki "scale reset to q" prm.Ckks.Params.scale_bits b.Ckks.Ciphertext.scale_bits;
  checkb "value preserved" true
    (close ~eps:1e-4 (Ckks.Evaluator.decrypt e b).(0) 0.5)

(* Constraint violations: each must raise Fhe_error. *)
let raises_fhe f =
  match f () with
  | _ -> false
  | exception Ckks.Evaluator.Fhe_error _ -> true

let eval_constraint_violations () =
  let e = ev () in
  let a = Ckks.Evaluator.encrypt e [| 1.0 |] in
  let low = Ckks.Evaluator.modswitch e a in
  checkb "add level mismatch" true (raises_fhe (fun () -> Ckks.Evaluator.add_cc e a low));
  let pt = Ckks.Evaluator.encode e [| 1.0 |] in
  let prod = Ckks.Evaluator.mul_cp e a pt in
  checkb "add scale mismatch" true (raises_fhe (fun () -> Ckks.Evaluator.add_cc e a prod));
  checkb "mul level mismatch" true (raises_fhe (fun () -> Ckks.Evaluator.mul_cc e a low));
  checkb "rescale below waterline" true (raises_fhe (fun () -> Ckks.Evaluator.rescale e a));
  let at0 = Ckks.Evaluator.encrypt e ~level:0 [| 1.0 |] in
  checkb "modswitch at level 0" true (raises_fhe (fun () -> Ckks.Evaluator.modswitch e at0));
  checkb "bootstrap target 0" true
    (raises_fhe (fun () -> Ckks.Evaluator.bootstrap e a ~target_level:0));
  checkb "bootstrap above l_max" true
    (raises_fhe (fun () -> Ckks.Evaluator.bootstrap e a ~target_level:17));
  checkb "mul at level 0 overflows" true
    (raises_fhe (fun () -> Ckks.Evaluator.mul_cc e at0 at0));
  let m = Ckks.Evaluator.mul_cc e a a in
  checkb "size-3 operand rejected" true (raises_fhe (fun () -> Ckks.Evaluator.rotate e m 1));
  checkb "relin of size-2 rejected" true (raises_fhe (fun () -> Ckks.Evaluator.relin e a))

let eval_noise_grows () =
  let e = ev () in
  let a = Ckks.Evaluator.encrypt e [| 0.9 |] in
  let m = Ckks.Evaluator.relin e (Ckks.Evaluator.mul_cc e a a) in
  checkb "noise grows under mul" true (m.Ckks.Ciphertext.err > a.Ckks.Ciphertext.err);
  let b = Ckks.Evaluator.bootstrap e (Ckks.Evaluator.rescale e m) ~target_level:5 in
  checkb "bootstrap adds approximation noise" true (b.Ckks.Ciphertext.err > 1e-8)

let eval_capacity_formula () =
  checkb "56 bits at level 0" true
    (Ckks.Evaluator.capacity_ok prm ~scale_bits:56 ~level:0);
  checkb "112 bits at level 0" false
    (Ckks.Evaluator.capacity_ok prm ~scale_bits:112 ~level:0);
  checkb "112 bits at level 1" true
    (Ckks.Evaluator.capacity_ok prm ~scale_bits:112 ~level:1);
  checkb "168 bits at level 1" false
    (Ckks.Evaluator.capacity_ok prm ~scale_bits:168 ~level:1)

let eval_op_count () =
  let e = ev () in
  let a = Ckks.Evaluator.encrypt e [| 1.0 |] in
  let b = Ckks.Evaluator.encrypt e [| 2.0 |] in
  ignore (Ckks.Evaluator.add_cc e a b);
  checki "three ops" 3 (Ckks.Evaluator.op_count e)

let eval_mul_accuracy =
  qcheck ~count:100 "homomorphic arithmetic tracks plain arithmetic"
    QCheck2.Gen.(triple (float_range (-0.9) 0.9) (float_range (-0.9) 0.9) (int_bound 10_000))
    (fun (x, y, seed) ->
      let e = Ckks.Evaluator.create ~seed:(Int64.of_int seed) prm in
      let a = Ckks.Evaluator.encrypt e [| x |] and b = Ckks.Evaluator.encrypt e [| y |] in
      let sum = Ckks.Evaluator.decrypt e (Ckks.Evaluator.add_cc e a b) in
      let prod =
        Ckks.Evaluator.decrypt e (Ckks.Evaluator.relin e (Ckks.Evaluator.mul_cc e a b))
      in
      Float.abs (sum.(0) -. (x +. y)) < 1e-6 && Float.abs (prod.(0) -. (x *. y)) < 1e-6)

let suite =
  [
    case "params: defaults" params_defaults;
    case "params: fig1" params_fig1;
    case "params: with_l_max" params_with_l_max;
    case "params: validation rejects bad configs" params_invalid;
    case "cost model: Table 2 grid values" table2_exact_values;
    case "cost model: linear interpolation" table2_interpolation;
    case "cost model: modswitch epsilon" table2_modswitch_cheap;
    case "cost model: extrapolation above 16" table2_extrapolation;
    table2_nonnegative;
    table2_monotone_in_level;
    case "prng: deterministic" prng_deterministic;
    case "prng: seed sensitivity" prng_seed_sensitivity;
    prng_float_range;
    prng_int_bound;
    case "prng: uniform mean" prng_mean;
    case "prng: gaussian moments" prng_gaussian_moments;
    case "plaintext: quantisation grid" plaintext_quantisation;
    case "plaintext: re-encode" plaintext_re_encode;
    case "evaluator: add_cc semantics" eval_add_cc;
    case "evaluator: mul_cc scales add, relin" eval_mul_cc_scale_sum;
    case "evaluator: mul_cp waterline" eval_mul_cp;
    case "evaluator: rotate" eval_rotate;
    case "evaluator: rescale" eval_rescale;
    case "evaluator: modswitch" eval_modswitch;
    case "evaluator: bootstrap" eval_bootstrap;
    case "evaluator: constraint violations raise" eval_constraint_violations;
    case "evaluator: noise grows" eval_noise_grows;
    case "evaluator: capacity formula" eval_capacity_formula;
    case "evaluator: op counting" eval_op_count;
    eval_mul_accuracy;
  ]
