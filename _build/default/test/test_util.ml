(* Shared helpers for the test suite. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let case name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 100) name gen prop =
  (* deterministic generator state: property failures must reproduce *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5EED; Hashtbl.hash name |])
    (QCheck2.Test.make ~count ~name gen prop)

(* --- Small DFG builders ------------------------------------------------ *)

open Fhe_ir

(* a3*x^3 + a1*x — the Figure 3 polynomial. *)
let fig3_poly () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let x2 = Dfg.mul_cc g x x in
  let x3 = Dfg.mul_cc g x2 x in
  let a3x3 = Dfg.mul_cp g x3 (Dfg.const g "a3") in
  let a1x = Dfg.mul_cp g x (Dfg.const g "a1") in
  let out = Dfg.add_cc g a3x3 a1x in
  Dfg.set_outputs g [ out ];
  g

(* The simplified ResNet block of Figure 1: two 3-tap convolutions around
   a cubic approximate ReLU, combined with the input by a final MulCC. *)
let conv g name v =
  let t0 = Dfg.mul_cp g v (Dfg.const g (name ^ "_w0")) in
  let t1 = Dfg.mul_cp g (Dfg.rotate g v (-1)) (Dfg.const g (name ^ "_w1")) in
  let t2 = Dfg.mul_cp g (Dfg.rotate g v 1) (Dfg.const g (name ^ "_w2")) in
  Dfg.add_cp g (Dfg.add_cc g (Dfg.add_cc g t0 t1) t2) (Dfg.const g (name ^ "_b"))

let fig1_block () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let u = conv g "conv1" x in
  let u2 = Dfg.mul_cc g u u in
  let u3 = Dfg.mul_cc g u2 u in
  let c3u3 = Dfg.mul_cp g u3 (Dfg.const g "c3") in
  let c1u = Dfg.mul_cp g u (Dfg.const g "c1") in
  let relu = Dfg.add_cc g c3u3 c1u in
  let y = conv g "conv2" relu in
  let out = Dfg.mul_cc g y x in
  Dfg.set_outputs g [ out ];
  g

(* The Figure 5 program: y = a3*x^3 and z = a4*((a1*x)^2 + y^4), written
   naively (shared subexpressions not reused) as the paper's example. *)
let fig5_program () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let x2 = Dfg.mul_cc g x x in
  let x3 = Dfg.mul_cc g x2 x in
  let y = Dfg.mul_cp g x3 (Dfg.const g "a3") in
  let a1x = Dfg.mul_cp g x (Dfg.const g "a1") in
  let a1x2 = Dfg.mul_cc g a1x a1x in
  let y2 = Dfg.mul_cc g y y in
  let y4 = Dfg.mul_cc g y2 y2 in
  let sum = Dfg.add_cc g a1x2 y4 in
  let z = Dfg.mul_cp g sum (Dfg.const g "a4") in
  Dfg.set_outputs g [ z ];
  g

(* Deterministic constant payloads for interpreting the hand-built
   graphs. *)
let const_env ~dim name =
  let rng = Ckks.Prng.create (Int64.of_int (Hashtbl.hash name)) in
  Array.init dim (fun _ -> Ckks.Prng.uniform rng ~lo:(-0.4) ~hi:0.4)

let input_env ~dim seed =
  let rng = Ckks.Prng.create seed in
  Array.init dim (fun _ -> Ckks.Prng.uniform rng ~lo:(-1.0) ~hi:1.0)

(* Random legal management-free DFGs for property tests: layered graphs of
   ct operations whose depth stays below the given bound. *)
let random_dfg_gen ~max_nodes ~max_depth =
  let open QCheck2.Gen in
  let* seed = int_bound 1_000_000 in
  let* node_budget = int_range 4 max_nodes in
  return (seed, node_budget, max_depth)

let build_random_dfg (seed, node_budget, max_depth) =
  let rng = Ckks.Prng.create (Int64.of_int seed) in
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  (* pool of (node, depth) candidates *)
  let pool = ref [ (x, 0) ] in
  let pick () =
    let l = !pool in
    List.nth l (Ckks.Prng.int rng ~bound:(List.length l))
  in
  let counter = ref 0 in
  for _ = 1 to node_budget do
    incr counter;
    let a, da = pick () in
    let choice = Ckks.Prng.int rng ~bound:5 in
    let node, depth =
      match choice with
      | 0 when da < max_depth -> (Dfg.mul_cc g a a, da + 1)
      | 1 when da < max_depth ->
          (Dfg.mul_cp g a (Dfg.const g (Printf.sprintf "c%d" !counter)), da + 1)
      | 2 ->
          let b, db = pick () in
          if db = da then (Dfg.add_cc g a b, da)
          else (Dfg.rotate g a 1, da)
      | 3 -> (Dfg.rotate g a ((Ckks.Prng.int rng ~bound:5) - 2), da)
      | _ -> (Dfg.add_cp g a (Dfg.const g (Printf.sprintf "k%d" !counter)), da)
    in
    pool := (node, depth) :: !pool
  done;
  (* outputs: all sinks *)
  let sinks =
    List.filter_map
      (fun n ->
        if n.Dfg.users = [] && Op.produces_ct n.Dfg.kind then Some n.Dfg.id else None)
      (Dfg.live_nodes g)
  in
  Dfg.set_outputs g sinks;
  g
