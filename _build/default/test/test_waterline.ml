(* The q_w < q regime: the waterline below the scale factor.  The paper's
   evaluation fixes q_w = q; these tests exercise the general code paths —
   lazier rescaling, deferred level consumption — and pin down which
   programs are out of scope (adds across incongruent scale trajectories,
   which need EVA's upscale operation). *)
open Test_util
open Fhe_ir

(* q = 56, q_w = 28: a ciphertext-plaintext product reaches the rescale
   threshold (2^84) only every other multiplication. *)
let prm = { Ckks.Params.default with waterline_bits = 28 }

let mul_cp_chain n =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let v = ref x in
  for i = 1 to n do
    v := Dfg.mul_cp g !v (Dfg.const g (Printf.sprintf "c%d" i))
  done;
  Dfg.set_outputs g [ !v ];
  g

let lazy_rescaling_under_low_waterline () =
  let g = mul_cp_chain 8 in
  let managed, report = Resbm.Driver.compile prm g in
  checkb "legal" true (Result.is_ok (Scale_check.run prm managed));
  (* scales accumulate across two multiplications before a rescale fires:
     strictly fewer rescales than multiplications *)
  let rescales = report.Resbm.Report.stats.Stats.executed_rescales in
  checkb "fewer rescales than muls" true (rescales < 8);
  checkb "at least some rescales" true (rescales >= 3)

let scalemgr_skips_ineligible_regions () =
  let g = mul_cp_chain 6 in
  let regioned = Resbm.Region.build g in
  let sp =
    Resbm.Scalemgr.plan regioned prm ~src:0 ~dst:6 ~src_entry_scale:56 ~bts_at_src:false
  in
  (* region 1: 56+28 = 84 -> rescale -> 28; region 2: 28+28 = 56 < 84: no
     rescale; region 3: 56+28 = 84 -> rescale; ... *)
  checki "region 1 rescales" 1 sp.Resbm.Scalemgr.infos.(1).Resbm.Scalemgr.rescales;
  checki "region 2 skips" 0 sp.Resbm.Scalemgr.infos.(2).Resbm.Scalemgr.rescales;
  checki "region 3 rescales" 1 sp.Resbm.Scalemgr.infos.(3).Resbm.Scalemgr.rescales;
  checkb "half the levels consumed" true (sp.Resbm.Scalemgr.lbts <= 3)

let mul_cc_chain_still_works () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let rec deepen v n = if n = 0 then v else deepen (Dfg.mul_cc g v v) (n - 1) in
  Dfg.set_outputs g [ deepen x 10 ];
  let managed, _ = Resbm.Driver.compile prm g in
  checkb "legal" true (Result.is_ok (Scale_check.run prm managed))

let deep_cp_chain_bootstraps () =
  (* deep enough to exceed the fresh levels even at half consumption *)
  let g = mul_cp_chain 40 in
  let managed, report = Resbm.Driver.compile prm g in
  checkb "legal" true (Result.is_ok (Scale_check.run prm managed));
  checkb "bootstraps present" true (report.Resbm.Report.stats.Stats.bootstrap_count > 0)

let incongruent_add_rejected () =
  (* cc-product (2^112) and cp-product (2^84) rescale to 2^56 and 2^28:
     no SMO plan can align them, so compilation must fail cleanly *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let cc = Dfg.mul_cc g x x in
  let cp = Dfg.mul_cp g x (Dfg.const g "c") in
  let s = Dfg.add_cc g cc cp in
  Dfg.set_outputs g [ s ];
  checkb "clean failure (needs an upscale op, out of scope)" true
    (match Resbm.Driver.compile prm g with
    | managed, _ -> Result.is_error (Scale_check.run prm managed)
    | exception Resbm.Plan.Apply_error _ -> true)

let managed_chain_executes () =
  let g = mul_cp_chain 5 in
  let managed, _ = Resbm.Driver.compile prm g in
  let dim = 4 in
  let consts name =
    let rng = Ckks.Prng.create (Int64.of_int (Hashtbl.hash name)) in
    Array.init dim (fun _ -> Ckks.Prng.uniform rng ~lo:(-0.8) ~hi:0.8)
  in
  let input = [| 0.9; -0.5; 0.3; 0.7 |] in
  let ev = Ckks.Evaluator.create prm in
  let result = Interp.run ev managed { Interp.inputs = [ ("x", input) ]; consts } in
  let plain = Nn.Plain_eval.run managed ~input:(fun _ -> input) ~consts in
  match (result.Interp.outputs, plain) with
  | [ ct ], [ expect ] ->
      let d = Ckks.Evaluator.decrypt ev ct in
      Array.iteri
        (fun i v -> checkb "executes correctly" true (Float.abs (v -. expect.(i)) < 1e-4))
        d
  | _ -> Alcotest.fail "one output"

let suite =
  [
    case "lazy rescaling below the waterline" lazy_rescaling_under_low_waterline;
    case "scalemgr skips ineligible regions" scalemgr_skips_ineligible_regions;
    case "cc chains manage normally" mul_cc_chain_still_works;
    case "deep cp chains bootstrap" deep_cp_chain_bootstraps;
    case "incongruent adds rejected cleanly" incongruent_add_rejected;
    case "managed cp chain executes" managed_chain_executes;
  ]
