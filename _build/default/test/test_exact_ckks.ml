(* The exact CKKS core: modular arithmetic, negacyclic NTT, RNS
   polynomials, and the toy RLWE scheme — plus the cross-validation of the
   simulated evaluator's Table 1 algebra against real encrypted
   arithmetic. *)
open Test_util

(* --- Modarith ------------------------------------------------------------- *)

let modarith_basics () =
  checki "add wrap" 1 (Ckks.Modarith.add_mod 8 10 ~q:17);
  checki "sub wrap" 15 (Ckks.Modarith.sub_mod 8 10 ~q:17);
  checki "mul" 12 (Ckks.Modarith.mul_mod 5 12 ~q:16);
  checki "neg" 10 (Ckks.Modarith.neg_mod 7 ~q:17);
  checki "neg zero" 0 (Ckks.Modarith.neg_mod 0 ~q:17);
  checki "pow" (Ckks.Modarith.pow_mod 3 4 ~q:1000) 81;
  checki "centered high" (-2) (Ckks.Modarith.centered 15 ~q:17);
  checki "centered low" 5 (Ckks.Modarith.centered 5 ~q:17)

let modarith_inverse =
  qcheck ~count:200 "a * a^-1 = 1 mod p"
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun a ->
      let q = 1_073_479_681 (* prime *) in
      let inv = Ckks.Modarith.inv_mod a ~q in
      Ckks.Modarith.mul_mod (a mod q) inv ~q = 1)

let modarith_primality () =
  checkb "2" true (Ckks.Modarith.is_prime 2);
  checkb "97" true (Ckks.Modarith.is_prime 97);
  checkb "1" false (Ckks.Modarith.is_prime 1);
  checkb "91 = 7*13" false (Ckks.Modarith.is_prime 91);
  checkb "2^31 - 1" true (Ckks.Modarith.is_prime 2147483647);
  checkb "Carmichael 561" false (Ckks.Modarith.is_prime 561)

let modarith_primality_matches_trial_division =
  qcheck ~count:200 "Miller-Rabin agrees with trial division"
    QCheck2.Gen.(int_range 2 20_000)
    (fun n ->
      let trial =
        let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
        go 2
      in
      Ckks.Modarith.is_prime n = trial)

let modarith_ntt_prime () =
  let q = Ckks.Modarith.find_ntt_prime ~bits:20 ~order:128 in
  checkb "prime" true (Ckks.Modarith.is_prime q);
  checki "congruence" 1 (q mod 128);
  checkb "below 2^20" true (q < 1 lsl 20)

let modarith_root_of_unity () =
  let order = 64 in
  let q = Ckks.Modarith.find_ntt_prime ~bits:20 ~order in
  let w = Ckks.Modarith.primitive_root_of_unity ~order ~q in
  checki "w^order = 1" 1 (Ckks.Modarith.pow_mod w order ~q);
  checkb "w^(order/2) = -1" true (Ckks.Modarith.pow_mod w (order / 2) ~q = q - 1)

(* --- NTT --------------------------------------------------------------------- *)

let ntt_plan n =
  let q = Ckks.Modarith.find_ntt_prime ~bits:20 ~order:(2 * n) in
  Ckks.Ntt.make_plan ~n ~q

let ntt_roundtrip =
  qcheck ~count:100 "inverse . forward = id"
    QCheck2.Gen.(pair (int_range 0 2) (int_bound 100_000))
    (fun (log_extra, seed) ->
      let n = 8 lsl log_extra in
      let plan = ntt_plan n in
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let a = Array.init n (fun _ -> Ckks.Prng.int rng ~bound:(Ckks.Ntt.q plan)) in
      let b = Array.copy a in
      Ckks.Ntt.forward plan b;
      Ckks.Ntt.inverse plan b;
      a = b)

(* Schoolbook negacyclic product: X^n = -1. *)
let schoolbook_negacyclic ~q a b =
  let n = Array.length a in
  let c = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let k = i + j in
      let prod = Ckks.Modarith.mul_mod a.(i) b.(j) ~q in
      if k < n then c.(k) <- Ckks.Modarith.add_mod c.(k) prod ~q
      else c.(k - n) <- Ckks.Modarith.sub_mod c.(k - n) prod ~q
    done
  done;
  c

let ntt_multiply_matches_schoolbook =
  qcheck ~count:100 "NTT product = schoolbook negacyclic product"
    QCheck2.Gen.(pair (int_range 0 2) (int_bound 100_000))
    (fun (log_extra, seed) ->
      let n = 4 lsl log_extra in
      let plan = ntt_plan n in
      let q = Ckks.Ntt.q plan in
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let a = Array.init n (fun _ -> Ckks.Prng.int rng ~bound:q) in
      let b = Array.init n (fun _ -> Ckks.Prng.int rng ~bound:q) in
      Ckks.Ntt.multiply plan a b = schoolbook_negacyclic ~q a b)

let ntt_x_times_xn1 () =
  (* X * X^(n-1) = X^n = -1 *)
  let n = 8 in
  let plan = ntt_plan n in
  let q = Ckks.Ntt.q plan in
  let x = Array.make n 0 and xn1 = Array.make n 0 in
  x.(1) <- 1;
  xn1.(n - 1) <- 1;
  let p = Ckks.Ntt.multiply plan x xn1 in
  checki "constant term is -1" (q - 1) p.(0);
  for i = 1 to n - 1 do
    checki "other terms zero" 0 p.(i)
  done

(* --- Rns_poly --------------------------------------------------------------------- *)

let basis () = Ckks.Rns_poly.make_basis ~n:8 ~bits:20 ~levels:2

let rns_roundtrip =
  qcheck ~count:100 "of_coeffs . to_centered_coeffs = id for small coefficients"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let b = basis () in
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let coeffs = Array.init 8 (fun _ -> Ckks.Prng.int rng ~bound:2_000_001 - 1_000_000) in
      let p = Ckks.Rns_poly.of_coeffs b ~level:2 coeffs in
      Ckks.Rns_poly.to_centered_coeffs p = coeffs)

let rns_ring_arithmetic () =
  let b = basis () in
  let p1 = Ckks.Rns_poly.of_coeffs b ~level:2 [| 1; 2; 3; 4; 0; 0; 0; 0 |] in
  let p2 = Ckks.Rns_poly.of_coeffs b ~level:2 [| 5; -1; 0; 0; 0; 0; 0; 0 |] in
  let sum = Ckks.Rns_poly.to_centered_coeffs (Ckks.Rns_poly.add p1 p2) in
  check (Alcotest.list Alcotest.int) "sum" [ 6; 1; 3; 4; 0; 0; 0; 0 ]
    (Array.to_list sum);
  let diff = Ckks.Rns_poly.to_centered_coeffs (Ckks.Rns_poly.sub p1 p2) in
  check (Alcotest.list Alcotest.int) "diff" [ -4; 3; 3; 4; 0; 0; 0; 0 ]
    (Array.to_list diff);
  (* (1 + 2X)(5 - X) = 5 + 9X - 2X^2 *)
  let q1 = Ckks.Rns_poly.of_coeffs b ~level:2 [| 1; 2; 0; 0; 0; 0; 0; 0 |] in
  let prod = Ckks.Rns_poly.to_centered_coeffs (Ckks.Rns_poly.mul q1 p2) in
  check (Alcotest.list Alcotest.int) "product" [ 5; 9; -2; 0; 0; 0; 0; 0 ]
    (Array.to_list prod)

let rns_negacyclic_wraparound () =
  let b = basis () in
  (* X^7 * X = -1 *)
  let x7 = Ckks.Rns_poly.of_coeffs b ~level:2 [| 0; 0; 0; 0; 0; 0; 0; 1 |] in
  let x = Ckks.Rns_poly.of_coeffs b ~level:2 [| 0; 1; 0; 0; 0; 0; 0; 0 |] in
  let p = Ckks.Rns_poly.to_centered_coeffs (Ckks.Rns_poly.mul x7 x) in
  check (Alcotest.list Alcotest.int) "X^8 = -1" [ -1; 0; 0; 0; 0; 0; 0; 0 ]
    (Array.to_list p)

let rns_rescale_divides () =
  let b = basis () in
  let ql = (Ckks.Rns_poly.basis_moduli b).(2) in
  (* a polynomial with coefficients divisible by the dropped prime *)
  let coeffs = Array.init 8 (fun i -> i * ql) in
  let p = Ckks.Rns_poly.of_coeffs b ~level:2 coeffs in
  let r = Ckks.Rns_poly.rescale p in
  checki "level dropped" 1 r.Ckks.Rns_poly.level;
  check (Alcotest.list Alcotest.int) "exact division"
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (Array.to_list (Ckks.Rns_poly.to_centered_coeffs r))

let rns_rescale_rounds =
  qcheck ~count:100 "rescale is division by q_last with bounded rounding"
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let b = basis () in
      let ql = (Ckks.Rns_poly.basis_moduli b).(2) in
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let coeffs = Array.init 8 (fun _ -> Ckks.Prng.int rng ~bound:2_000_000_001 - 1_000_000_000) in
      let p = Ckks.Rns_poly.of_coeffs b ~level:2 coeffs in
      let r = Ckks.Rns_poly.to_centered_coeffs (Ckks.Rns_poly.rescale p) in
      Array.for_all2
        (fun before after ->
          Float.abs (float_of_int after -. (float_of_int before /. float_of_int ql)) <= 1.0)
        coeffs r)

let rns_mod_drop_preserves_small_values () =
  let b = basis () in
  let coeffs = [| 12; -7; 0; 3; 0; 0; 0; 1 |] in
  let p = Ckks.Rns_poly.of_coeffs b ~level:2 coeffs in
  let d = Ckks.Rns_poly.mod_drop p in
  checki "level dropped" 1 d.Ckks.Rns_poly.level;
  checkb "values preserved" true
    (Ckks.Rns_poly.to_centered_coeffs d = coeffs)

let rns_level_mismatch_rejected () =
  let b = basis () in
  let p2 = Ckks.Rns_poly.zero b ~level:2 and p1 = Ckks.Rns_poly.zero b ~level:1 in
  checkb "level mismatch" true
    (match Ckks.Rns_poly.add p2 p1 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Toy CKKS ------------------------------------------------------------------------ *)

let ctx () = Ckks.Toy_ckks.create Ckks.Toy_ckks.default_params

let sample_values ~slots seed =
  let rng = Ckks.Prng.create seed in
  Array.init slots (fun _ -> Ckks.Prng.uniform rng ~lo:(-1.0) ~hi:1.0)

let max_err a b =
  let m = ref 0.0 in
  Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. b.(i)))) a;
  !m

let toy_encode_decode () =
  let c = ctx () in
  let v = sample_values ~slots:32 1L in
  let err = max_err v (Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.encode c v)) in
  checkb "encoding error below 1e-4" true (err < 1e-4)

let toy_encrypt_decrypt () =
  let c = ctx () in
  let sk, pk = Ckks.Toy_ckks.keygen c in
  let v = sample_values ~slots:32 2L in
  let ct = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c v) in
  let out = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk ct) in
  checkb "decryption error below 1e-2" true (max_err v out < 1e-2)

let toy_homomorphic_add () =
  let c = ctx () in
  let sk, pk = Ckks.Toy_ckks.keygen c in
  let va = sample_values ~slots:32 3L and vb = sample_values ~slots:32 4L in
  let ca = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c va) in
  let cb = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c vb) in
  let out = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk (Ckks.Toy_ckks.add ca cb)) in
  let expect = Array.map2 ( +. ) va vb in
  checkb "sum error below 2e-2" true (max_err expect out < 2e-2)

let toy_homomorphic_mul_and_rescale () =
  let c = ctx () in
  let sk, pk = Ckks.Toy_ckks.keygen c in
  let va = sample_values ~slots:32 5L and vb = sample_values ~slots:32 6L in
  let ca = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c va) in
  let cb = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c vb) in
  let prod = Ckks.Toy_ckks.mul ca cb in
  (* Table 1: scales multiply, level unchanged, size 3 *)
  check_float ~eps:1.0 "scale multiplied"
    (Ckks.Toy_ckks.scale ca *. Ckks.Toy_ckks.scale cb)
    (Ckks.Toy_ckks.scale prod);
  checki "level unchanged" (Ckks.Toy_ckks.level ca) (Ckks.Toy_ckks.level prod);
  let expect = Array.map2 ( *. ) va vb in
  let out = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk prod) in
  checkb "product error below 5e-2" true (max_err expect out < 5e-2);
  (* Rescale: divide the scale by the dropped prime, drop a level,
     preserve the value *)
  let rescaled = Ckks.Toy_ckks.rescale prod in
  checki "level dropped" (Ckks.Toy_ckks.level prod - 1) (Ckks.Toy_ckks.level rescaled);
  let dropped = Ckks.Toy_ckks.dropped_prime c ~level:(Ckks.Toy_ckks.level prod) in
  check_float ~eps:1e-6 "scale divided by dropped prime"
    (Ckks.Toy_ckks.scale prod /. float_of_int dropped)
    (Ckks.Toy_ckks.scale rescaled);
  let out' = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk rescaled) in
  checkb "value preserved across rescale" true (max_err expect out' < 5e-2)

let toy_mul_plain () =
  let c = ctx () in
  let sk, pk = Ckks.Toy_ckks.keygen c in
  let va = sample_values ~slots:32 7L and vw = sample_values ~slots:32 8L in
  let ca = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c va) in
  let prod = Ckks.Toy_ckks.mul_plain c ca (Ckks.Toy_ckks.encode c vw) in
  let out = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk prod) in
  checkb "ct-pt product" true (max_err (Array.map2 ( *. ) va vw) out < 5e-2)

let toy_add_plain () =
  let c = ctx () in
  let sk, pk = Ckks.Toy_ckks.keygen c in
  let va = sample_values ~slots:32 9L and vb = sample_values ~slots:32 10L in
  let ca = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c va) in
  let s = Ckks.Toy_ckks.add_plain c ca (Ckks.Toy_ckks.encode c vb) in
  let out = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk s) in
  checkb "ct-pt sum" true (max_err (Array.map2 ( +. ) va vb) out < 2e-2)

let toy_mod_drop () =
  let c = ctx () in
  let sk, pk = Ckks.Toy_ckks.keygen c in
  let v = sample_values ~slots:32 11L in
  let ct = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c v) in
  let d = Ckks.Toy_ckks.mod_drop ct in
  checki "level dropped" (Ckks.Toy_ckks.level ct - 1) (Ckks.Toy_ckks.level d);
  check_float ~eps:1e-9 "scale unchanged" (Ckks.Toy_ckks.scale ct) (Ckks.Toy_ckks.scale d);
  let out = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk d) in
  checkb "value preserved" true (max_err v out < 1e-2)

let toy_constraint_checks () =
  let c = ctx () in
  let _, pk = Ckks.Toy_ckks.keygen c in
  let v = sample_values ~slots:32 12L in
  let ct = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c v) in
  let low = Ckks.Toy_ckks.mod_drop ct in
  checkb "add level mismatch" true
    (match Ckks.Toy_ckks.add ct low with _ -> false | exception Invalid_argument _ -> true);
  let prod = Ckks.Toy_ckks.mul ct ct in
  checkb "add scale mismatch" true
    (match Ckks.Toy_ckks.add ct prod with _ -> false | exception Invalid_argument _ -> true);
  checkb "mul of size-3" true
    (match Ckks.Toy_ckks.mul prod prod with _ -> false | exception Invalid_argument _ -> true)

(* Cross-validation: drive the simulated evaluator and the exact scheme
   through the same Table 1 trajectory and compare scales, levels and
   values.  The simulator's scale algebra is in bits; the exact scheme's
   primes are only approximately 2^20, so scales are compared as ratios. *)
let simulator_matches_exact_scheme () =
  let c = ctx () in
  let sk, pk = Ckks.Toy_ckks.keygen c in
  (* the exact chain primes are ~2^20, the encoding scale 2^19 *)
  let sim_prm =
    {
      Ckks.Params.default with
      log2_degree = 6;
      scale_bits = 20;
      waterline_bits = 18;
      q0_bits = 20;
      l_max = 2;
      input_level = 2;
      input_scale_bits = 19;
    }
  in
  let ev = Ckks.Evaluator.create sim_prm in
  let va = sample_values ~slots:32 13L and vb = sample_values ~slots:32 14L in
  (* exact: (a*b) rescaled, then added to itself *)
  let ca = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c va) in
  let cb = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c vb) in
  let exact = Ckks.Toy_ckks.rescale (Ckks.Toy_ckks.mul ca cb) in
  let exact_out = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk exact) in
  (* simulated: same trajectory *)
  let sa = Ckks.Evaluator.encrypt ev va and sb = Ckks.Evaluator.encrypt ev vb in
  let sim = Ckks.Evaluator.rescale ev (Ckks.Evaluator.relin ev (Ckks.Evaluator.mul_cc ev sa sb)) in
  let sim_out = Ckks.Evaluator.decrypt ev sim in
  (* levels agree exactly *)
  checki "levels agree" (Ckks.Toy_ckks.level exact) sim.Ckks.Ciphertext.level;
  (* scale trajectories agree: both are (input scale)^2 / (one prime) *)
  let exact_scale_ratio = Ckks.Toy_ckks.scale exact /. Ckks.Toy_ckks.scale ca in
  let sim_scale_ratio =
    (2.0 ** float_of_int sim.Ckks.Ciphertext.scale_bits)
    /. (2.0 ** float_of_int sim_prm.Ckks.Params.input_scale_bits)
  in
  checkb "scale trajectories agree within the prime approximation" true
    (Float.abs (log (exact_scale_ratio /. sim_scale_ratio)) < 0.1);
  (* values agree with the plain product *)
  let expect = Array.map2 ( *. ) va vb in
  checkb "exact scheme computes the product" true (max_err expect exact_out < 5e-2);
  checkb "simulator computes the product" true (max_err expect sim_out < 1e-2)

let suite =
  [
    case "modarith: basics" modarith_basics;
    modarith_inverse;
    case "modarith: primality" modarith_primality;
    modarith_primality_matches_trial_division;
    case "modarith: NTT prime search" modarith_ntt_prime;
    case "modarith: roots of unity" modarith_root_of_unity;
    ntt_roundtrip;
    ntt_multiply_matches_schoolbook;
    case "ntt: X * X^(n-1) = -1" ntt_x_times_xn1;
    rns_roundtrip;
    case "rns: ring arithmetic" rns_ring_arithmetic;
    case "rns: negacyclic wraparound" rns_negacyclic_wraparound;
    case "rns: exact rescale division" rns_rescale_divides;
    rns_rescale_rounds;
    case "rns: mod drop preserves small values" rns_mod_drop_preserves_small_values;
    case "rns: level mismatch rejected" rns_level_mismatch_rejected;
    case "toy ckks: encode/decode" toy_encode_decode;
    case "toy ckks: encrypt/decrypt" toy_encrypt_decrypt;
    case "toy ckks: homomorphic addition" toy_homomorphic_add;
    case "toy ckks: multiplication and rescale (Table 1)" toy_homomorphic_mul_and_rescale;
    case "toy ckks: ciphertext-plaintext multiply" toy_mul_plain;
    case "toy ckks: ciphertext-plaintext add" toy_add_plain;
    case "toy ckks: modswitch" toy_mod_drop;
    case "toy ckks: constraint checks" toy_constraint_checks;
    case "simulator vs exact scheme (cross-validation)" simulator_matches_exact_scheme;
  ]

(* --- Galois rotations ------------------------------------------------------- *)

let automorphism_identity () =
  let b = basis () in
  let coeffs = [| 3; -1; 4; 1; -5; 9; 2; -6 |] in
  let p = Ckks.Rns_poly.of_coeffs b ~level:2 coeffs in
  checkb "g = 1 is the identity" true
    (Ckks.Rns_poly.to_centered_coeffs (Ckks.Rns_poly.automorphism p ~g:1) = coeffs)

let automorphism_is_ring_hom =
  qcheck ~count:50 "automorphism commutes with multiplication"
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 0 3))
    (fun (seed, gi) ->
      let b = basis () in
      let g = List.nth [ 3; 5; 7; 15 ] gi in
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let poly () =
        Ckks.Rns_poly.of_coeffs b ~level:2
          (Array.init 8 (fun _ -> Ckks.Prng.int rng ~bound:201 - 100))
      in
      let p1 = poly () and p2 = poly () in
      let lhs =
        Ckks.Rns_poly.to_centered_coeffs
          (Ckks.Rns_poly.automorphism (Ckks.Rns_poly.mul p1 p2) ~g)
      in
      let rhs =
        Ckks.Rns_poly.to_centered_coeffs
          (Ckks.Rns_poly.mul
             (Ckks.Rns_poly.automorphism p1 ~g)
             (Ckks.Rns_poly.automorphism p2 ~g))
      in
      lhs = rhs)

let toy_rotation_permutes_slots () =
  let c = ctx () in
  let sk, pk = Ckks.Toy_ckks.keygen c in
  let slots = 32 in
  let v = Array.init slots (fun i -> 0.01 *. float_of_int (i + 1)) in
  let ct = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c v) in
  List.iter
    (fun k ->
      let rotated = Ckks.Toy_ckks.rotate c ct k in
      let out = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk rotated) in
      let expect = Array.init slots (fun i -> v.((i + k) mod slots)) in
      checkb
        (Printf.sprintf "rotation by %d" k)
        true
        (max_err expect out < 1e-2))
    [ 1; 2; 5; 16 ]

let toy_rotation_composes () =
  let c = ctx () in
  let sk, pk = Ckks.Toy_ckks.keygen c in
  let slots = 32 in
  let v = Array.init slots (fun i -> 0.02 *. float_of_int i) in
  let ct = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c v) in
  let r = Ckks.Toy_ckks.rotate c (Ckks.Toy_ckks.rotate c ct 3) 4 in
  let out = Ckks.Toy_ckks.decode c (Ckks.Toy_ckks.decrypt c sk r) in
  let expect = Array.init slots (fun i -> v.((i + 7) mod slots)) in
  checkb "rotate 3 then 4 = rotate 7" true (max_err expect out < 1e-2)

let toy_rotation_mismatch_rejected () =
  let c = ctx () in
  let _, pk = Ckks.Toy_ckks.keygen c in
  let v = sample_values ~slots:32 21L in
  let ct = Ckks.Toy_ckks.encrypt c pk (Ckks.Toy_ckks.encode c v) in
  let r = Ckks.Toy_ckks.rotate c ct 1 in
  checkb "mixed automorphisms need key switching" true
    (match Ckks.Toy_ckks.add ct r with
    | _ -> false
    | exception Invalid_argument _ -> true)

let galois_suite =
  [
    case "rns: automorphism identity" automorphism_identity;
    automorphism_is_ring_hom;
    case "toy ckks: rotation permutes slots" toy_rotation_permutes_slots;
    case "toy ckks: rotations compose" toy_rotation_composes;
    case "toy ckks: automorphism mismatch rejected" toy_rotation_mismatch_rejected;
  ]

let suite = suite @ galois_suite
